package flat

import (
	"encoding/binary"
	"math"
)

// Table is a zero-copy view over a table inside a flat buffer. Field
// accessors read directly from the underlying bytes; absent fields return
// the type's zero value, mirroring FlatBuffers defaults. All accessors are
// bounds-checked so that corrupt or truncated buffers yield zero values
// rather than panics.
type Table struct {
	buf []byte
	pos uint32
}

// GetRoot returns the root table of buf.
func GetRoot(buf []byte) (Table, error) {
	if len(buf) < headerSize {
		return Table{}, ErrCorrupt
	}
	root := binary.LittleEndian.Uint32(buf)
	if int(root)+4 > len(buf) || root < headerSize {
		return Table{}, ErrCorrupt
	}
	return Table{buf: buf, pos: root}, nil
}

// Valid reports whether the table view is non-empty.
func (t Table) Valid() bool { return t.buf != nil }

// fieldPos resolves slot i via the vtable; returns 0 when absent/corrupt.
func (t Table) fieldPos(i int) uint32 {
	if t.buf == nil || int(t.pos)+4 > len(t.buf) {
		return 0
	}
	vt := binary.LittleEndian.Uint32(t.buf[t.pos:])
	if int(vt)+2 > len(t.buf) {
		return 0
	}
	n := int(binary.LittleEndian.Uint16(t.buf[vt:]))
	if i < 0 || i >= n {
		return 0
	}
	entry := int(vt) + 2 + 2*i
	if entry+2 > len(t.buf) {
		return 0
	}
	off := binary.LittleEndian.Uint16(t.buf[entry:])
	if off == 0 {
		return 0
	}
	return t.pos + uint32(off)
}

// Has reports whether slot i is present.
func (t Table) Has(i int) bool { return t.fieldPos(i) != 0 }

// Uint8 returns the u8 scalar in slot i, or 0 if absent.
func (t Table) Uint8(i int) uint8 {
	p := t.fieldPos(i)
	if p == 0 || int(p)+1 > len(t.buf) {
		return 0
	}
	return t.buf[p]
}

// Bool returns the boolean in slot i, or false if absent.
func (t Table) Bool(i int) bool { return t.Uint8(i) != 0 }

// Uint32 returns the u32 scalar in slot i, or 0 if absent.
func (t Table) Uint32(i int) uint32 {
	p := t.fieldPos(i)
	if p == 0 || int(p)+4 > len(t.buf) {
		return 0
	}
	return binary.LittleEndian.Uint32(t.buf[p:])
}

// Uint64 returns the u64 scalar in slot i, or 0 if absent.
func (t Table) Uint64(i int) uint64 {
	p := t.fieldPos(i)
	if p == 0 || int(p)+8 > len(t.buf) {
		return 0
	}
	return binary.LittleEndian.Uint64(t.buf[p:])
}

// Int64 returns the signed scalar in slot i, or 0 if absent.
func (t Table) Int64(i int) int64 { return int64(t.Uint64(i)) }

// Float64 returns the f64 scalar in slot i, or 0 if absent.
func (t Table) Float64(i int) float64 { return math.Float64frombits(t.Uint64(i)) }

// ref returns the out-of-line position stored in slot i, or 0.
func (t Table) ref(i int) uint32 {
	p := t.fieldPos(i)
	if p == 0 || int(p)+4 > len(t.buf) {
		return 0
	}
	r := binary.LittleEndian.Uint32(t.buf[p:])
	if int(r)+4 > len(t.buf) || r < headerSize {
		return 0
	}
	return r
}

// Bytes returns the byte vector in slot i without copying, or nil if
// absent. The result aliases the buffer.
func (t Table) Bytes(i int) []byte {
	r := t.ref(i)
	if r == 0 {
		return nil
	}
	n := binary.LittleEndian.Uint32(t.buf[r:])
	start := int(r) + 4
	end := start + int(n)
	if end > len(t.buf) || end < start {
		return nil
	}
	return t.buf[start:end:end]
}

// String returns the string in slot i, or "". The returned string copies
// the bytes (Go strings are immutable); use Bytes for zero-copy access.
func (t Table) String(i int) string { return string(t.Bytes(i)) }

// SubTable returns the sub-table referenced by slot i. The result's
// Valid method reports false when the slot is absent.
func (t Table) SubTable(i int) Table {
	r := t.ref(i)
	if r == 0 {
		return Table{}
	}
	return Table{buf: t.buf, pos: r}
}

// VectorLen returns the element count of the vector in slot i, or 0.
func (t Table) VectorLen(i int) int {
	r := t.ref(i)
	if r == 0 {
		return 0
	}
	return int(binary.LittleEndian.Uint32(t.buf[r:]))
}

// RefVectorAt returns element j of the reference vector in slot i as a
// Table view. Invalid indices return an invalid Table.
func (t Table) RefVectorAt(i, j int) Table {
	r := t.ref(i)
	if r == 0 || j < 0 {
		return Table{}
	}
	n := int(binary.LittleEndian.Uint32(t.buf[r:]))
	if j >= n {
		return Table{}
	}
	ep := int(r) + 4 + 4*j
	if ep+4 > len(t.buf) {
		return Table{}
	}
	sub := binary.LittleEndian.Uint32(t.buf[ep:])
	if int(sub)+4 > len(t.buf) || sub < headerSize {
		return Table{}
	}
	return Table{buf: t.buf, pos: sub}
}

// BytesVectorAt returns element j of the reference vector in slot i
// interpreted as a byte vector (e.g. a vector of strings), or nil.
func (t Table) BytesVectorAt(i, j int) []byte {
	r := t.ref(i)
	if r == 0 || j < 0 {
		return nil
	}
	n := int(binary.LittleEndian.Uint32(t.buf[r:]))
	if j >= n {
		return nil
	}
	ep := int(r) + 4 + 4*j
	if ep+4 > len(t.buf) {
		return nil
	}
	sub := binary.LittleEndian.Uint32(t.buf[ep:])
	if int(sub)+4 > len(t.buf) || sub < headerSize {
		return nil
	}
	ln := binary.LittleEndian.Uint32(t.buf[sub:])
	start := int(sub) + 4
	end := start + int(ln)
	if end > len(t.buf) || end < start {
		return nil
	}
	return t.buf[start:end:end]
}

// Uint64VectorAt returns element j of the u64 vector in slot i, or 0.
func (t Table) Uint64VectorAt(i, j int) uint64 {
	r := t.ref(i)
	if r == 0 || j < 0 {
		return 0
	}
	n := int(binary.LittleEndian.Uint32(t.buf[r:]))
	if j >= n {
		return 0
	}
	ep := int(r) + 4 + 8*j
	if ep+8 > len(t.buf) {
		return 0
	}
	return binary.LittleEndian.Uint64(t.buf[ep:])
}

// Float64VectorAt returns element j of the f64 vector in slot i, or 0.
func (t Table) Float64VectorAt(i, j int) float64 {
	return math.Float64frombits(t.Uint64VectorAt(i, j))
}
