// Package flat implements a FlatBuffers-style zero-copy serialization
// format.
//
// It reproduces the properties of Google FlatBuffers that matter for the
// FlexRIC evaluation: messages are built once into a contiguous buffer and
// then read *directly from the raw bytes* with no decode pass — field
// access resolves a vtable slot and returns the value in place. The price
// is a fixed per-table overhead (vtable + offset fields, ~30–40 bytes per
// message), which is exactly the signaling-size overhead the paper measures
// in Fig. 7b.
//
// Wire layout (all integers little-endian):
//
//	buffer  = [u32 root-table-position] [payload...]
//	table   = [u32 vtable-position] [inline field data...]
//	vtable  = [u16 #slots] [u16 slot-offset...]   // offset 0 ⇒ field absent,
//	                                              // else relative to table start
//	vector  = [u32 element-count] [elements...]
//	string  = vector of bytes
//
// Out-of-line values (strings, vectors, sub-tables) are referenced by u32
// absolute buffer positions stored in the table's inline data.
package flat

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt reports a structurally invalid buffer.
var ErrCorrupt = errors.New("flat: corrupt buffer")

const headerSize = 4

type slotKind uint8

const (
	slotAbsent slotKind = iota
	slotU8
	slotU32
	slotU64
	slotF64
	slotRef // u32 absolute position of out-of-line value
)

type slot struct {
	kind slotKind
	val  uint64
}

// Builder incrementally constructs a flat buffer. Builders are not safe
// for concurrent use. A Builder may be reused via Reset.
type Builder struct {
	buf []byte
	// base is the offset of the message being built inside buf: 0 for
	// the plain Reset path, len(dst) after ResetAppend(dst). All wire
	// positions are relative to base, so an appended message is
	// byte-identical to a from-scratch one.
	base    int
	slots   []slot
	inTable bool
}

// NewBuilder returns a Builder with the given initial capacity.
func NewBuilder(capacity int) *Builder {
	b := &Builder{buf: make([]byte, headerSize, capacity+headerSize)}
	return b
}

// Reset clears the builder for reuse, keeping its buffer. A buffer
// adopted via ResetAppend is dropped first — it belongs to the caller.
func (b *Builder) Reset() {
	if b.base != 0 {
		b.buf, b.base = nil, 0
	}
	if cap(b.buf) < headerSize {
		b.buf = make([]byte, headerSize)
	}
	b.buf = b.buf[:headerSize]
	b.buf[0], b.buf[1], b.buf[2], b.buf[3] = 0, 0, 0, 0
	b.slots = b.slots[:0]
	b.inTable = false
}

// ResetAppend prepares the builder to construct the next message at the
// end of dst (which may be nil). The builder takes ownership of dst
// until the message is finished and read via BytesWithPrefix; call
// Detach afterwards so the builder does not retain the caller's buffer.
// Existing bytes of dst are never modified.
func (b *Builder) ResetAppend(dst []byte) {
	b.base = len(dst)
	b.buf = append(dst, 0, 0, 0, 0)
	b.slots = b.slots[:0]
	b.inTable = false
}

// Detach releases the buffer adopted by ResetAppend. The next Reset
// allocates fresh scratch; callers alternating Reset and ResetAppend
// should use two Builders.
func (b *Builder) Detach() {
	b.buf, b.base = nil, 0
	b.inTable = false
}

func (b *Builder) pos() uint32 { return uint32(len(b.buf) - b.base) }

func (b *Builder) putU16(v uint16) {
	b.buf = binary.LittleEndian.AppendUint16(b.buf, v)
}

func (b *Builder) putU32(v uint32) {
	b.buf = binary.LittleEndian.AppendUint32(b.buf, v)
}

func (b *Builder) putU64(v uint64) {
	b.buf = binary.LittleEndian.AppendUint64(b.buf, v)
}

// CreateByteVector writes a length-prefixed byte vector out of line and
// returns its position for use with AddRef.
func (b *Builder) CreateByteVector(data []byte) uint32 {
	p := b.pos()
	b.putU32(uint32(len(data)))
	b.buf = append(b.buf, data...)
	return p
}

// CreateString writes s out of line and returns its position.
func (b *Builder) CreateString(s string) uint32 {
	p := b.pos()
	b.putU32(uint32(len(s)))
	b.buf = append(b.buf, s...)
	return p
}

// CreateRefVector writes a vector of out-of-line references (e.g. to
// sub-tables or strings) and returns its position.
func (b *Builder) CreateRefVector(refs []uint32) uint32 {
	p := b.pos()
	b.putU32(uint32(len(refs)))
	for _, r := range refs {
		b.putU32(r)
	}
	return p
}

// CreateUint64Vector writes a vector of u64 scalars and returns its
// position.
func (b *Builder) CreateUint64Vector(vals []uint64) uint32 {
	p := b.pos()
	b.putU32(uint32(len(vals)))
	for _, v := range vals {
		b.putU64(v)
	}
	return p
}

// CreateFloat64Vector writes a vector of f64 scalars and returns its
// position.
func (b *Builder) CreateFloat64Vector(vals []float64) uint32 {
	p := b.pos()
	b.putU32(uint32(len(vals)))
	for _, v := range vals {
		b.putU64(math.Float64bits(v))
	}
	return p
}

// StartTable begins a table with capacity for nSlots fields. Out-of-line
// values referenced by the table must be created *before* StartTable.
func (b *Builder) StartTable(nSlots int) {
	if b.inTable {
		panic("flat: StartTable while table in progress")
	}
	b.inTable = true
	if cap(b.slots) < nSlots {
		b.slots = make([]slot, nSlots)
	} else {
		b.slots = b.slots[:nSlots]
		for i := range b.slots {
			b.slots[i] = slot{}
		}
	}
}

func (b *Builder) setSlot(i int, k slotKind, v uint64) {
	if !b.inTable {
		panic("flat: field added outside table")
	}
	if i < 0 || i >= len(b.slots) {
		panic(fmt.Sprintf("flat: slot %d out of range (%d slots)", i, len(b.slots)))
	}
	b.slots[i] = slot{kind: k, val: v}
}

// AddUint8 stores a u8 scalar in slot i.
func (b *Builder) AddUint8(i int, v uint8) { b.setSlot(i, slotU8, uint64(v)) }

// AddBool stores a boolean in slot i.
func (b *Builder) AddBool(i int, v bool) {
	var x uint64
	if v {
		x = 1
	}
	b.setSlot(i, slotU8, x)
}

// AddUint32 stores a u32 scalar in slot i.
func (b *Builder) AddUint32(i int, v uint32) { b.setSlot(i, slotU32, uint64(v)) }

// AddUint64 stores a u64 scalar in slot i.
func (b *Builder) AddUint64(i int, v uint64) { b.setSlot(i, slotU64, v) }

// AddInt64 stores a signed scalar in slot i.
func (b *Builder) AddInt64(i int, v int64) { b.setSlot(i, slotU64, uint64(v)) }

// AddFloat64 stores an f64 scalar in slot i.
func (b *Builder) AddFloat64(i int, v float64) { b.setSlot(i, slotF64, math.Float64bits(v)) }

// AddRef stores a reference to an out-of-line value (string, vector,
// sub-table) in slot i.
func (b *Builder) AddRef(i int, ref uint32) { b.setSlot(i, slotRef, uint64(ref)) }

// EndTable writes the table and its vtable, returning the table position
// for use as a sub-table reference or as the Finish root.
func (b *Builder) EndTable() uint32 {
	if !b.inTable {
		panic("flat: EndTable without StartTable")
	}
	b.inTable = false

	// Write the vtable first: [#slots][offset...]. Offsets are relative to
	// the table start and filled in after we lay out the inline data.
	vtPos := b.pos()
	b.putU16(uint16(len(b.slots)))
	vtBase := len(b.buf)
	for range b.slots {
		b.putU16(0)
	}

	tablePos := b.pos()
	b.putU32(vtPos)
	for i, s := range b.slots {
		if s.kind == slotAbsent {
			continue
		}
		off := uint16(b.pos() - tablePos)
		binary.LittleEndian.PutUint16(b.buf[vtBase+2*i:], off)
		switch s.kind {
		case slotU8:
			b.buf = append(b.buf, byte(s.val))
		case slotU32, slotRef:
			b.putU32(uint32(s.val))
		case slotU64, slotF64:
			b.putU64(s.val)
		}
	}
	return tablePos
}

// Finish records root as the buffer's root table.
func (b *Builder) Finish(root uint32) {
	binary.LittleEndian.PutUint32(b.buf[b.base:], root)
}

// Bytes returns the finished message (excluding any prefix adopted via
// ResetAppend). It aliases the builder's storage and is valid until the
// next Reset.
func (b *Builder) Bytes() []byte { return b.buf[b.base:] }

// BytesWithPrefix returns the whole backing slice: the dst passed to
// ResetAppend followed by the finished message. This is the append-API
// return value — the caller owns it once the builder is Detached.
func (b *Builder) BytesWithPrefix() []byte { return b.buf }

// Len returns the current message length in bytes (excluding any
// append prefix).
func (b *Builder) Len() int { return len(b.buf) - b.base }
