package protowire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestFieldRoundTrip(t *testing.T) {
	e := NewEncoder(128)
	e.Uint64(1, 300)
	e.Int64(2, -42)
	e.Bool(3, true)
	e.Double(4, math.Pi)
	e.BytesField(5, []byte{9, 8, 7})
	e.String(6, "flexran")

	d := NewDecoder(e.Bytes())
	expect := func(wantField, wantWire int) {
		t.Helper()
		f, w, err := d.Tag()
		if err != nil || f != wantField || w != wantWire {
			t.Fatalf("tag: got (%d,%d,%v) want (%d,%d)", f, w, err, wantField, wantWire)
		}
	}
	expect(1, TypeVarint)
	if v, _ := d.Uint64(); v != 300 {
		t.Fatalf("u64: %d", v)
	}
	expect(2, TypeVarint)
	if v, _ := d.Int64(); v != -42 {
		t.Fatalf("i64: %d", v)
	}
	expect(3, TypeVarint)
	if v, _ := d.Bool(); !v {
		t.Fatal("bool")
	}
	expect(4, TypeFixed64)
	if v, _ := d.Double(); v != math.Pi {
		t.Fatalf("double: %v", v)
	}
	expect(5, TypeBytes)
	if v, _ := d.Bytes(); !bytes.Equal(v, []byte{9, 8, 7}) {
		t.Fatalf("bytes: %v", v)
	}
	expect(6, TypeBytes)
	if v, _ := d.String(); v != "flexran" {
		t.Fatalf("string: %q", v)
	}
	if d.More() {
		t.Fatal("unexpected trailing data")
	}
}

func TestVarintBoundaries(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 16383, 16384, math.MaxUint64}
	e := NewEncoder(64)
	for _, v := range vals {
		e.Uint64(1, v)
	}
	d := NewDecoder(e.Bytes())
	for i, want := range vals {
		if _, _, err := d.Tag(); err != nil {
			t.Fatalf("tag %d: %v", i, err)
		}
		got, err := d.Uint64()
		if err != nil || got != want {
			t.Fatalf("val %d: got %d want %d err %v", i, got, want, err)
		}
	}
}

func TestVarintSizes(t *testing.T) {
	e := NewEncoder(16)
	e.Uint64(1, 1) // tag(1 byte) + value(1 byte)
	if e.Len() != 2 {
		t.Fatalf("small varint field took %d bytes, want 2", e.Len())
	}
}

func TestSkip(t *testing.T) {
	e := NewEncoder(64)
	e.Uint64(1, 5)
	e.Double(2, 1.0)
	e.BytesField(3, make([]byte, 10))
	e.Uint64(4, 77)
	d := NewDecoder(e.Bytes())
	for {
		f, w, err := d.Tag()
		if err != nil {
			t.Fatal(err)
		}
		if f == 4 {
			v, err := d.Uint64()
			if err != nil || v != 77 {
				t.Fatalf("field 4: %d %v", v, err)
			}
			break
		}
		if err := d.Skip(w); err != nil {
			t.Fatalf("skip field %d: %v", f, err)
		}
	}
}

func TestEmbedded(t *testing.T) {
	inner := NewEncoder(32)
	inner.Uint64(1, 123)
	outer := NewEncoder(64)
	outer.Embedded(7, inner.Bytes())
	d := NewDecoder(outer.Bytes())
	f, w, err := d.Tag()
	if err != nil || f != 7 || w != TypeBytes {
		t.Fatalf("outer tag: %d %d %v", f, w, err)
	}
	sub, err := d.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	di := NewDecoder(sub)
	if _, _, err := di.Tag(); err != nil {
		t.Fatal(err)
	}
	if v, _ := di.Uint64(); v != 123 {
		t.Fatalf("inner: %d", v)
	}
}

func TestErrors(t *testing.T) {
	// Truncated varint.
	if _, err := NewDecoder([]byte{0x80}).Uint64(); err != ErrTruncated {
		t.Fatalf("truncated varint: %v", err)
	}
	// Varint overflow (11 continuation bytes).
	over := bytes.Repeat([]byte{0xFF}, 11)
	if _, err := NewDecoder(over).Uint64(); err != ErrOverflow {
		t.Fatalf("overflow: %v", err)
	}
	// Length exceeds remaining input.
	if _, err := NewDecoder([]byte{5, 1, 2}).Bytes(); err != ErrTruncated {
		t.Fatalf("truncated bytes: %v", err)
	}
	// Field number 0 is invalid.
	if _, _, err := NewDecoder([]byte{0x00}).Tag(); err == nil {
		t.Fatal("field 0 must be rejected")
	}
	// Unknown wire type on skip.
	if err := NewDecoder(nil).Skip(7); err == nil {
		t.Fatal("bad wire type must fail")
	}
	// Truncated fixed64.
	if _, err := NewDecoder([]byte{1, 2, 3}).Double(); err != ErrTruncated {
		t.Fatalf("truncated double: %v", err)
	}
}

func TestQuickVarintRoundTrip(t *testing.T) {
	f := func(u uint64, i int64) bool {
		e := NewEncoder(32)
		e.Uint64(1, u)
		e.Int64(2, i)
		d := NewDecoder(e.Bytes())
		if _, _, err := d.Tag(); err != nil {
			return false
		}
		gu, err := d.Uint64()
		if err != nil || gu != u {
			return false
		}
		if _, _, err := d.Tag(); err != nil {
			return false
		}
		gi, err := d.Int64()
		return err == nil && gi == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecoderRobustness(t *testing.T) {
	f := func(b []byte) bool {
		d := NewDecoder(b)
		for d.More() {
			_, w, err := d.Tag()
			if err != nil {
				return true
			}
			if err := d.Skip(w); err != nil {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 256)
	e := NewEncoder(512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.Uint64(1, uint64(i))
		e.Uint64(2, 42)
		e.BytesField(3, payload)
		e.Double(4, 1.5)
	}
}

func BenchmarkDecode(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 256)
	e := NewEncoder(512)
	e.Uint64(1, 9)
	e.Uint64(2, 42)
	e.BytesField(3, payload)
	e.Double(4, 1.5)
	buf := e.Bytes()
	d := NewDecoder(buf)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Reset(buf)
		for d.More() {
			_, w, err := d.Tag()
			if err != nil {
				b.Fatal(err)
			}
			if err := d.Skip(w); err != nil {
				b.Fatal(err)
			}
		}
	}
}
