// Package protowire implements the Protocol Buffers wire format
// (varint/tag/length-delimited), used by the FlexRAN baseline controller.
//
// FlexRAN [Foukas et al., CoNEXT'16] encodes its south-bound protocol with
// Protobuf. Its cost profile sits between PER (bit packing, heavy
// encode/decode) and FlatBuffers (zero decode, size overhead): varints are
// byte-oriented and cheap-ish to write, but decoding still materializes
// every field. This package re-creates that wire format from scratch on
// the stdlib.
package protowire

import (
	"errors"
	"fmt"
	"math"
)

// Wire types, as in the protobuf encoding spec.
const (
	TypeVarint  = 0
	TypeFixed64 = 1
	TypeBytes   = 2
	TypeFixed32 = 5
)

// Codec errors.
var (
	ErrTruncated = errors.New("protowire: truncated input")
	ErrOverflow  = errors.New("protowire: varint overflow")
	ErrBadWire   = errors.New("protowire: invalid wire type")
)

// Encoder appends protobuf-encoded fields to a buffer. The zero value is
// ready to use; Reset allows reuse without allocation.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with capacity preallocated for n bytes.
func NewEncoder(n int) *Encoder { return &Encoder{buf: make([]byte, 0, n)} }

// Reset clears the encoder, retaining its buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded message, aliasing the encoder's buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the encoded size in bytes.
func (e *Encoder) Len() int { return len(e.buf) }

func (e *Encoder) varint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

func (e *Encoder) tag(field, wire int) {
	e.varint(uint64(field)<<3 | uint64(wire))
}

// Uint64 writes field as a varint.
func (e *Encoder) Uint64(field int, v uint64) {
	e.tag(field, TypeVarint)
	e.varint(v)
}

// Int64 writes field as a zig-zag varint (sint64).
func (e *Encoder) Int64(field int, v int64) {
	e.Uint64(field, uint64(v)<<1^uint64(v>>63))
}

// Bool writes field as a 0/1 varint.
func (e *Encoder) Bool(field int, v bool) {
	var x uint64
	if v {
		x = 1
	}
	e.Uint64(field, x)
}

// Double writes field as a fixed64 IEEE 754 value.
func (e *Encoder) Double(field int, v float64) {
	e.tag(field, TypeFixed64)
	x := math.Float64bits(v)
	e.buf = append(e.buf,
		byte(x), byte(x>>8), byte(x>>16), byte(x>>24),
		byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
}

// Bytes writes field as a length-delimited byte string.
func (e *Encoder) BytesField(field int, b []byte) {
	e.tag(field, TypeBytes)
	e.varint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String writes field as a length-delimited string.
func (e *Encoder) String(field int, s string) {
	e.tag(field, TypeBytes)
	e.varint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Embedded writes field as a length-delimited sub-message.
func (e *Encoder) Embedded(field int, msg []byte) { e.BytesField(field, msg) }

// Decoder iterates over the fields of a protobuf-encoded message. Every
// field access advances the cursor and materializes the value — protobuf,
// like PER, pays an explicit decode pass.
type Decoder struct {
	buf []byte
	pos int
}

// NewDecoder returns a Decoder over b without copying.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Reset repositions the decoder over b.
func (d *Decoder) Reset(b []byte) { d.buf, d.pos = b, 0 }

// More reports whether any bytes remain.
func (d *Decoder) More() bool { return d.pos < len(d.buf) }

func (d *Decoder) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if d.pos >= len(d.buf) {
			return 0, ErrTruncated
		}
		b := d.buf[d.pos]
		d.pos++
		if shift == 63 && b > 1 {
			return 0, ErrOverflow
		}
		v |= uint64(b&0x7F) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
		if shift > 63 {
			return 0, ErrOverflow
		}
	}
}

// Tag reads the next field tag, returning field number and wire type.
func (d *Decoder) Tag() (field, wire int, err error) {
	t, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	field = int(t >> 3)
	wire = int(t & 7)
	if field == 0 {
		return 0, 0, fmt.Errorf("%w: field number 0", ErrBadWire)
	}
	return field, wire, nil
}

// Uint64 reads a varint value.
func (d *Decoder) Uint64() (uint64, error) { return d.varint() }

// Int64 reads a zig-zag varint value.
func (d *Decoder) Int64() (int64, error) {
	u, err := d.varint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

// Bool reads a varint as a boolean.
func (d *Decoder) Bool() (bool, error) {
	u, err := d.varint()
	return u != 0, err
}

// Double reads a fixed64 IEEE 754 value.
func (d *Decoder) Double() (float64, error) {
	if d.pos+8 > len(d.buf) {
		return 0, ErrTruncated
	}
	var x uint64
	for i := 7; i >= 0; i-- {
		x = x<<8 | uint64(d.buf[d.pos+i])
	}
	d.pos += 8
	return math.Float64frombits(x), nil
}

// Bytes reads a length-delimited field. The result aliases the input.
func (d *Decoder) Bytes() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, ErrTruncated
	}
	out := d.buf[d.pos : d.pos+int(n) : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

// String reads a length-delimited field as a string (copies).
func (d *Decoder) String() (string, error) {
	b, err := d.Bytes()
	return string(b), err
}

// Skip discards a field of the given wire type.
func (d *Decoder) Skip(wire int) error {
	switch wire {
	case TypeVarint:
		_, err := d.varint()
		return err
	case TypeFixed64:
		if d.pos+8 > len(d.buf) {
			return ErrTruncated
		}
		d.pos += 8
		return nil
	case TypeBytes:
		_, err := d.Bytes()
		return err
	case TypeFixed32:
		if d.pos+4 > len(d.buf) {
			return ErrTruncated
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("%w: %d", ErrBadWire, wire)
	}
}
