package asn1per

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestBitRoundTrip(t *testing.T) {
	w := NewWriter(16)
	pattern := []bool{true, false, true, true, false, false, true, false, true}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d: got %v want %v", i, got, want)
		}
	}
}

func TestWriteBitsBoundaries(t *testing.T) {
	cases := []struct {
		v uint64
		n int
	}{
		{0, 0}, {1, 1}, {0x5, 3}, {0xFF, 8}, {0x1FF, 9},
		{0xDEADBEEF, 32}, {math.MaxUint64, 64}, {1, 64}, {0, 17},
	}
	w := NewWriter(64)
	for _, c := range cases {
		w.WriteBits(c.v, c.n)
	}
	r := NewReader(w.Bytes())
	for i, c := range cases {
		got, err := r.ReadBits(c.n)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.v {
			t.Fatalf("case %d: got %#x want %#x (n=%d)", i, got, c.v, c.n)
		}
	}
}

func TestConstrainedInt(t *testing.T) {
	cases := []struct {
		v, lo, hi int64
	}{
		{0, 0, 0}, {5, 0, 10}, {-3, -10, 10}, {255, 0, 255},
		{256, 0, 65535}, {1 << 40, 0, 1 << 62}, {-1 << 30, -1 << 31, 1<<31 - 1},
	}
	w := NewWriter(64)
	for _, c := range cases {
		if err := w.WriteConstrainedInt(c.v, c.lo, c.hi); err != nil {
			t.Fatalf("write %+v: %v", c, err)
		}
	}
	r := NewReader(w.Bytes())
	for i, c := range cases {
		got, err := r.ReadConstrainedInt(c.lo, c.hi)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.v {
			t.Fatalf("case %d: got %d want %d", i, got, c.v)
		}
	}
}

func TestConstrainedIntRangeError(t *testing.T) {
	w := NewWriter(8)
	if err := w.WriteConstrainedInt(11, 0, 10); err == nil {
		t.Fatal("expected range error for value above hi")
	}
	if err := w.WriteConstrainedInt(-1, 0, 10); err == nil {
		t.Fatal("expected range error for value below lo")
	}
	if err := w.WriteConstrainedInt(0, 5, 4); err == nil {
		t.Fatal("expected range error for inverted range")
	}
}

func TestLengthDeterminant(t *testing.T) {
	lengths := []int{0, 1, 127, 128, 300, 16383, 16384, 100000, MaxLength}
	w := NewWriter(64)
	for _, n := range lengths {
		w.WriteLength(n)
	}
	r := NewReader(w.Bytes())
	for i, want := range lengths {
		got, err := r.ReadLength()
		if err != nil {
			t.Fatalf("len %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("len %d: got %d want %d", i, got, want)
		}
	}
}

func TestLengthEncodingSizes(t *testing.T) {
	// Short lengths must stay compact: PER's whole point.
	w := NewWriter(4)
	w.WriteLength(5)
	if w.Len() != 1 {
		t.Fatalf("length 5 took %d bytes, want 1", w.Len())
	}
	w.Reset()
	w.WriteLength(200)
	if w.Len() != 2 {
		t.Fatalf("length 200 took %d bytes, want 2", w.Len())
	}
}

func TestOctetsAndString(t *testing.T) {
	w := NewWriter(64)
	w.WriteBit(true) // force unaligned start
	w.WriteOctets([]byte{1, 2, 3})
	w.WriteString("héllo")
	w.WriteOctets(nil)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBit(); err != nil {
		t.Fatal(err)
	}
	o, err := r.ReadOctets()
	if err != nil || !bytes.Equal(o, []byte{1, 2, 3}) {
		t.Fatalf("octets: %v %v", o, err)
	}
	s, err := r.ReadString()
	if err != nil || s != "héllo" {
		t.Fatalf("string: %q %v", s, err)
	}
	o, err = r.ReadOctets()
	if err != nil || len(o) != 0 {
		t.Fatalf("empty octets: %v %v", o, err)
	}
}

func TestZeroCopyOctetsAlias(t *testing.T) {
	w := NewWriter(16)
	w.WriteOctets([]byte{9, 8, 7})
	buf := w.Bytes()
	r := NewReader(buf)
	o, err := r.ReadOctetsZeroCopy()
	if err != nil {
		t.Fatal(err)
	}
	buf[1] = 42 // first payload byte (after 1-byte length)
	if o[0] != 42 {
		t.Fatal("zero-copy read should alias the input buffer")
	}
}

func TestUintInt(t *testing.T) {
	us := []uint64{0, 1, 127, 128, 1 << 20, math.MaxUint64}
	is := []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64}
	w := NewWriter(128)
	for _, v := range us {
		w.WriteUint(v)
	}
	for _, v := range is {
		w.WriteInt(v)
	}
	r := NewReader(w.Bytes())
	for i, want := range us {
		got, err := r.ReadUint()
		if err != nil || got != want {
			t.Fatalf("uint %d: got %d want %d err %v", i, got, want, err)
		}
	}
	for i, want := range is {
		got, err := r.ReadInt()
		if err != nil || got != want {
			t.Fatalf("int %d: got %d want %d err %v", i, got, want, err)
		}
	}
}

func TestEnumAndBitmap(t *testing.T) {
	w := NewWriter(8)
	if err := w.WriteEnum(3, 5); err != nil {
		t.Fatal(err)
	}
	w.WriteOptionalBitmap([]bool{true, false, true})
	r := NewReader(w.Bytes())
	e, err := r.ReadEnum(5)
	if err != nil || e != 3 {
		t.Fatalf("enum: %d %v", e, err)
	}
	bm, err := r.ReadOptionalBitmap(3)
	if err != nil || !bm[0] || bm[1] || !bm[2] {
		t.Fatalf("bitmap: %v %v", bm, err)
	}
}

func TestFloat(t *testing.T) {
	vals := []float64{0, 1.5, -3.25, math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64, math.Inf(1)}
	w := NewWriter(64)
	for _, f := range vals {
		w.WriteFloat(f)
	}
	r := NewReader(w.Bytes())
	for i, want := range vals {
		got, err := r.ReadFloat()
		if err != nil || got != want {
			t.Fatalf("float %d: got %v want %v err %v", i, got, want, err)
		}
	}
	// NaN round-trips as NaN.
	w.Reset()
	w.WriteFloat(math.NaN())
	r.Reset(w.Bytes())
	got, err := r.ReadFloat()
	if err != nil || !math.IsNaN(got) {
		t.Fatalf("NaN: got %v err %v", got, err)
	}
}

func TestTruncatedInputs(t *testing.T) {
	r := NewReader(nil)
	if _, err := r.ReadBit(); err != ErrTruncated {
		t.Fatalf("ReadBit on empty: %v", err)
	}
	if _, err := NewReader(nil).ReadLength(); err != ErrTruncated {
		t.Fatal("ReadLength on empty should fail")
	}
	// Length says 10 bytes but only 2 present.
	if _, err := NewReader([]byte{10, 1, 2}).ReadOctets(); err != ErrTruncated {
		t.Fatal("ReadOctets should detect truncation")
	}
	// Two-byte length form cut short.
	if _, err := NewReader([]byte{0x81}).ReadLength(); err != ErrTruncated {
		t.Fatal("two-byte length truncation")
	}
	// Four-byte length form cut short.
	if _, err := NewReader([]byte{0xC0, 0x01}).ReadLength(); err != ErrTruncated {
		t.Fatal("four-byte length truncation")
	}
}

func TestAlignSemantics(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0x3, 2)
	w.Align()
	w.WriteFixedOctets([]byte{0xAB})
	r := NewReader(w.Bytes())
	if v, _ := r.ReadBits(2); v != 0x3 {
		t.Fatalf("prefix bits: %#x", v)
	}
	b, err := r.ReadFixedOctets(1)
	if err != nil || b[0] != 0xAB {
		t.Fatalf("aligned octet: %v %v", b, err)
	}
}

func TestWriterReuse(t *testing.T) {
	w := NewWriter(8)
	w.WriteString("first")
	first := append([]byte(nil), w.Bytes()...)
	w.Reset()
	w.WriteString("second")
	if bytes.Equal(first, w.Bytes()) {
		t.Fatal("reset writer should produce fresh content")
	}
	s, err := NewReader(w.Bytes()).ReadString()
	if err != nil || s != "second" {
		t.Fatalf("after reuse: %q %v", s, err)
	}
}

// Property: every (value, range) pair round-trips.
func TestQuickConstrainedInt(t *testing.T) {
	f := func(raw uint64, loRaw int32, spanRaw uint16) bool {
		lo := int64(loRaw)
		hi := lo + int64(spanRaw)
		v := lo + int64(raw%uint64(spanRaw+1))
		w := NewWriter(16)
		if err := w.WriteConstrainedInt(v, lo, hi); err != nil {
			return false
		}
		got, err := NewReader(w.Bytes()).ReadConstrainedInt(lo, hi)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary byte strings and ints round-trip in sequence.
func TestQuickSequenceRoundTrip(t *testing.T) {
	f := func(b []byte, u uint64, i int64, s string, flag bool) bool {
		if len(b) > MaxLength || len(s) > MaxLength {
			return true
		}
		w := NewWriter(64)
		w.WriteBool(flag)
		w.WriteOctets(b)
		w.WriteUint(u)
		w.WriteInt(i)
		w.WriteString(s)
		r := NewReader(w.Bytes())
		gf, err := r.ReadBool()
		if err != nil || gf != flag {
			return false
		}
		gb, err := r.ReadOctets()
		if err != nil || !bytes.Equal(gb, b) {
			return false
		}
		gu, err := r.ReadUint()
		if err != nil || gu != u {
			return false
		}
		gi, err := r.ReadInt()
		if err != nil || gi != i {
			return false
		}
		gs, err := r.ReadString()
		return err == nil && gs == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoder never panics on random garbage.
func TestQuickDecoderRobustness(t *testing.T) {
	f := func(b []byte) bool {
		r := NewReader(b)
		_, _ = r.ReadLength()
		_, _ = r.ReadOctets()
		_, _ = r.ReadUint()
		_, _ = r.ReadConstrainedInt(0, 1000)
		_, _ = r.ReadFloat()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Reset()
		for j := 0; j < 64; j++ {
			w.WriteBits(uint64(j), 11)
		}
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1024)
	for j := 0; j < 64; j++ {
		w.WriteBits(uint64(j), 11)
	}
	buf := w.Bytes()
	r := NewReader(buf)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Reset(buf)
		for j := 0; j < 64; j++ {
			if _, err := r.ReadBits(11); err != nil {
				b.Fatal(err)
			}
		}
	}
}
