// Package asn1per implements an aligned-PER-style bit-oriented codec.
//
// It reproduces the properties of ASN.1 PER that matter for the FlexRIC
// evaluation: a compact bit-packed wire format with constrained integers,
// length determinants and optional-field bitmaps, at the cost of an explicit
// encode and decode pass over every field. The grammar is not ITU X.691 —
// it is a faithful re-creation of PER's encoding *mechanics* (constrained
// whole numbers, semi-constrained lengths, octet alignment rules) used by
// the E2AP and service-model codecs in this repository.
package asn1per

import (
	"errors"
	"fmt"
	"math/bits"
)

// Common codec errors.
var (
	// ErrTruncated reports that the input ended before a complete value
	// could be decoded.
	ErrTruncated = errors.New("asn1per: truncated input")
	// ErrRange reports a value outside its PER constraint.
	ErrRange = errors.New("asn1per: value out of constrained range")
	// ErrTooLong reports a length exceeding the codec's hard cap.
	ErrTooLong = errors.New("asn1per: length exceeds maximum")
)

// MaxLength caps every length determinant accepted by the decoder. It
// bounds allocations when decoding untrusted input.
const MaxLength = 1<<24 - 1

// Writer packs values into a bit stream, most significant bit first,
// mirroring PER's canonical bit order. The zero value is ready to use.
// Writers may be reused via Reset to avoid allocation in hot paths.
type Writer struct {
	buf  []byte
	nbit uint8 // bits used in the last byte, 0 means byte-aligned
}

// NewWriter returns a Writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// Reset clears the writer, retaining the underlying buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// ResetAppend prepares the writer to append a new byte-aligned bit
// stream after the existing contents of dst (which may be nil). The
// writer takes ownership of dst until the stream is finished and read
// via Bytes (which returns dst's contents followed by the encoding);
// call ResetAppend(nil) afterwards to drop the reference. Existing
// bytes of dst are never modified — the encoder only appends.
func (w *Writer) ResetAppend(dst []byte) {
	w.buf = dst
	w.nbit = 0
}

// Bytes returns the encoded bit stream padded to a whole number of bytes.
// The returned slice aliases the writer's buffer and is valid until the
// next mutation.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the current encoded length in bytes (including a partially
// filled trailing byte).
func (w *Writer) Len() int { return len(w.buf) }

// BitLen returns the number of bits written.
func (w *Writer) BitLen() int {
	if w.nbit == 0 {
		return len(w.buf) * 8
	}
	return (len(w.buf)-1)*8 + int(w.nbit)
}

// Align pads with zero bits to the next octet boundary, as aligned PER
// requires before octet-based fields.
func (w *Writer) Align() { w.nbit = 0 }

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	if w.nbit == 0 {
		w.buf = append(w.buf, 0)
		w.nbit = 8
	}
	if b {
		w.buf[len(w.buf)-1] |= 1 << (w.nbit - 1)
	}
	w.nbit--
}

// WriteBits appends the low n bits of v, most significant bit first.
// n must be in [0,64].
func (w *Writer) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("asn1per: WriteBits n=%d", n))
	}
	for n > 0 {
		if w.nbit == 0 {
			w.buf = append(w.buf, 0)
			w.nbit = 8
		}
		take := int(w.nbit)
		if take > n {
			take = n
		}
		chunk := byte(v >> uint(n-take) & (1<<uint(take) - 1))
		w.buf[len(w.buf)-1] |= chunk << (w.nbit - uint8(take))
		w.nbit -= uint8(take)
		n -= take
	}
}

// WriteBool encodes a BOOLEAN as one bit.
func (w *Writer) WriteBool(b bool) { w.WriteBit(b) }

// bitsFor returns the number of bits needed to represent values in
// [0, span]; span==0 needs zero bits.
func bitsFor(span uint64) int {
	if span == 0 {
		return 0
	}
	return 64 - bits.LeadingZeros64(span)
}

// WriteConstrainedInt encodes v with PER constrained-whole-number rules
// for the range [lo, hi]. Values outside the range return ErrRange.
func (w *Writer) WriteConstrainedInt(v, lo, hi int64) error {
	if v < lo || v > hi || hi < lo {
		return fmt.Errorf("%w: %d not in [%d,%d]", ErrRange, v, lo, hi)
	}
	span := uint64(hi - lo)
	w.WriteBits(uint64(v-lo), bitsFor(span))
	return nil
}

// WriteUint encodes an unconstrained non-negative integer as a
// length-prefixed minimal big-endian octet string, per PER's
// unconstrained-integer style.
func (w *Writer) WriteUint(v uint64) {
	n := (bitsFor(v) + 7) / 8
	if n == 0 {
		n = 1
	}
	w.WriteLength(n)
	w.Align()
	for i := n - 1; i >= 0; i-- {
		w.buf = append(w.buf, byte(v>>(8*uint(i))))
	}
}

// WriteInt encodes a signed integer using zig-zag mapping into WriteUint.
func (w *Writer) WriteInt(v int64) {
	w.WriteUint(uint64(v)<<1 ^ uint64(v>>63))
}

// WriteLength encodes a semi-constrained length determinant in the
// aligned-PER style: one octet for < 128, two octets with the top bit set
// for < 16384, and a 4-octet escape (10xxxxxx form simplified) above.
func (w *Writer) WriteLength(n int) {
	if n < 0 || n > MaxLength {
		panic(fmt.Sprintf("asn1per: length %d out of range", n))
	}
	w.Align()
	switch {
	case n < 128:
		w.buf = append(w.buf, byte(n))
	case n < 16384:
		w.buf = append(w.buf, 0x80|byte(n>>8), byte(n))
	default:
		w.buf = append(w.buf, 0xC0, byte(n>>16), byte(n>>8), byte(n))
	}
	w.nbit = 0
}

// WriteOctets encodes a length-prefixed octet string, octet-aligned.
func (w *Writer) WriteOctets(b []byte) {
	w.WriteLength(len(b))
	w.buf = append(w.buf, b...)
}

// WriteFixedOctets appends exactly len(b) octets with no length prefix
// (for fields of statically known size).
func (w *Writer) WriteFixedOctets(b []byte) {
	w.Align()
	w.buf = append(w.buf, b...)
}

// WriteString encodes a length-prefixed UTF-8 string.
func (w *Writer) WriteString(s string) {
	w.WriteLength(len(s))
	w.buf = append(w.buf, s...)
}

// WriteEnum encodes an enumeration with cardinality card as a constrained
// integer in [0, card-1].
func (w *Writer) WriteEnum(v, card int) error {
	return w.WriteConstrainedInt(int64(v), 0, int64(card-1))
}

// WriteOptionalBitmap writes n presence bits given as a bool slice, the
// PER OPTIONAL-field preamble.
func (w *Writer) WriteOptionalBitmap(present []bool) {
	for _, p := range present {
		w.WriteBit(p)
	}
}

// WriteFloat encodes an IEEE 754 binary64 value as 8 fixed octets.
// (PER REAL is baroque; E2 SMs carry measurements as scaled integers or
// doubles, and fixed binary64 keeps the round-trip exact.)
func (w *Writer) WriteFloat(f float64) {
	w.Align()
	v := floatBits(f)
	for i := 7; i >= 0; i-- {
		w.buf = append(w.buf, byte(v>>(8*uint(i))))
	}
}
