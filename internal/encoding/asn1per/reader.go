package asn1per

import (
	"fmt"
	"math"
)

// Reader consumes a bit stream produced by Writer. It performs an explicit
// decode pass: every field access advances the cursor and materializes the
// value, mirroring the decode cost profile of ASN.1 PER runtimes.
type Reader struct {
	buf  []byte
	pos  int   // byte index of the next unread byte
	nbit uint8 // bits already consumed from buf[pos] (0..7)
}

// NewReader returns a Reader over b. The reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Reset repositions the reader over b.
func (r *Reader) Reset(b []byte) {
	r.buf = b
	r.pos = 0
	r.nbit = 0
}

// Remaining returns the number of whole bytes not yet consumed.
func (r *Reader) Remaining() int {
	n := len(r.buf) - r.pos
	if n < 0 {
		return 0
	}
	return n
}

// Align skips to the next octet boundary.
func (r *Reader) Align() {
	if r.nbit != 0 {
		r.pos++
		r.nbit = 0
	}
}

// ReadBit consumes one bit.
func (r *Reader) ReadBit() (bool, error) {
	if r.pos >= len(r.buf) {
		return false, ErrTruncated
	}
	b := r.buf[r.pos]>>(7-r.nbit)&1 == 1
	r.nbit++
	if r.nbit == 8 {
		r.nbit = 0
		r.pos++
	}
	return b, nil
}

// ReadBits consumes n bits and returns them right-aligned. n must be in
// [0,64].
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("asn1per: ReadBits n=%d", n)
	}
	var v uint64
	for n > 0 {
		if r.pos >= len(r.buf) {
			return 0, ErrTruncated
		}
		avail := 8 - int(r.nbit)
		take := avail
		if take > n {
			take = n
		}
		chunk := r.buf[r.pos] >> uint(avail-take) & (1<<uint(take) - 1)
		v = v<<uint(take) | uint64(chunk)
		r.nbit += uint8(take)
		if r.nbit == 8 {
			r.nbit = 0
			r.pos++
		}
		n -= take
	}
	return v, nil
}

// ReadBool decodes a BOOLEAN.
func (r *Reader) ReadBool() (bool, error) { return r.ReadBit() }

// ReadConstrainedInt decodes an integer constrained to [lo, hi].
func (r *Reader) ReadConstrainedInt(lo, hi int64) (int64, error) {
	if hi < lo {
		return 0, fmt.Errorf("%w: empty range [%d,%d]", ErrRange, lo, hi)
	}
	span := uint64(hi - lo)
	v, err := r.ReadBits(bitsFor(span))
	if err != nil {
		return 0, err
	}
	if v > span {
		return 0, fmt.Errorf("%w: decoded %d exceeds span %d", ErrRange, v, span)
	}
	return lo + int64(v), nil
}

// ReadLength decodes a length determinant written by Writer.WriteLength.
func (r *Reader) ReadLength() (int, error) {
	r.Align()
	if r.pos >= len(r.buf) {
		return 0, ErrTruncated
	}
	b0 := r.buf[r.pos]
	r.pos++
	switch {
	case b0 < 0x80:
		return int(b0), nil
	case b0&0xC0 == 0x80:
		if r.pos >= len(r.buf) {
			return 0, ErrTruncated
		}
		n := int(b0&0x3F)<<8 | int(r.buf[r.pos])
		r.pos++
		return n, nil
	default:
		if r.pos+3 > len(r.buf) {
			return 0, ErrTruncated
		}
		n := int(r.buf[r.pos])<<16 | int(r.buf[r.pos+1])<<8 | int(r.buf[r.pos+2])
		r.pos += 3
		if n > MaxLength {
			return 0, ErrTooLong
		}
		return n, nil
	}
}

// ReadCount decodes a length determinant that counts following sequence
// items. Since every item occupies at least one byte, a count exceeding
// the remaining input is rejected before the caller allocates for it —
// this bounds allocations when decoding untrusted input.
func (r *Reader) ReadCount() (int, error) {
	n, err := r.ReadLength()
	if err != nil {
		return 0, err
	}
	if n > r.Remaining() {
		return 0, ErrTruncated
	}
	return n, nil
}

// ReadUint decodes an unconstrained non-negative integer.
func (r *Reader) ReadUint() (uint64, error) {
	n, err := r.ReadLength()
	if err != nil {
		return 0, err
	}
	if n > 8 {
		return 0, fmt.Errorf("%w: uint with %d octets", ErrRange, n)
	}
	if r.pos+n > len(r.buf) {
		return 0, ErrTruncated
	}
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<8 | uint64(r.buf[r.pos+i])
	}
	r.pos += n
	return v, nil
}

// ReadInt decodes a signed integer written by Writer.WriteInt.
func (r *Reader) ReadInt() (int64, error) {
	u, err := r.ReadUint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

// ReadOctets decodes a length-prefixed octet string. The result is a
// copy; empty strings decode as nil.
func (r *Reader) ReadOctets() ([]byte, error) {
	n, err := r.ReadLength()
	if err != nil {
		return nil, err
	}
	if r.pos+n > len(r.buf) {
		return nil, ErrTruncated
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.pos:r.pos+n])
	r.pos += n
	return out, nil
}

// ReadOctetsZeroCopy decodes a length-prefixed octet string without
// copying; the result aliases the reader's input.
func (r *Reader) ReadOctetsZeroCopy() ([]byte, error) {
	n, err := r.ReadLength()
	if err != nil {
		return nil, err
	}
	if r.pos+n > len(r.buf) {
		return nil, ErrTruncated
	}
	out := r.buf[r.pos : r.pos+n : r.pos+n]
	r.pos += n
	return out, nil
}

// ReadFixedOctets consumes exactly n octets (aligned, no length prefix).
func (r *Reader) ReadFixedOctets(n int) ([]byte, error) {
	r.Align()
	if n < 0 || r.pos+n > len(r.buf) {
		return nil, ErrTruncated
	}
	out := make([]byte, n)
	copy(out, r.buf[r.pos:r.pos+n])
	r.pos += n
	return out, nil
}

// ReadString decodes a length-prefixed UTF-8 string.
func (r *Reader) ReadString() (string, error) {
	n, err := r.ReadLength()
	if err != nil {
		return "", err
	}
	if r.pos+n > len(r.buf) {
		return "", ErrTruncated
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return s, nil
}

// ReadEnum decodes an enumeration of the given cardinality.
func (r *Reader) ReadEnum(card int) (int, error) {
	v, err := r.ReadConstrainedInt(0, int64(card-1))
	return int(v), err
}

// ReadOptionalBitmap reads n presence bits.
func (r *Reader) ReadOptionalBitmap(n int) ([]bool, error) {
	out := make([]bool, n)
	for i := range out {
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// ReadFloat decodes an 8-octet binary64 value.
func (r *Reader) ReadFloat() (float64, error) {
	r.Align()
	if r.pos+8 > len(r.buf) {
		return 0, ErrTruncated
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(r.buf[r.pos+i])
	}
	r.pos += 8
	return floatFromBits(v), nil
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(v uint64) float64 { return math.Float64frombits(v) }
