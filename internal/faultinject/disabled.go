//go:build nofaultinject

package faultinject

// Enabled is false in this build: fault injection is compiled out.
// Plans still parse (so flags remain accepted), but WrapConn and
// WrapListener return their argument unchanged and no fault counters
// are registered.
const Enabled = false
