//go:build !nofaultinject

package faultinject

// Enabled reports whether fault injection is compiled in. It is a
// build-time constant: the default build carries the wrappers so chaos
// suites and demos can script faults; building with
// `-tags nofaultinject` flips it to false, WrapConn/WrapListener become
// identity functions, and no fault machinery or counters exist in the
// binary — production deployments pay nothing for the chaos tooling.
const Enabled = true
