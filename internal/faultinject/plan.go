// Package faultinject provides deterministic, scripted fault injection
// for the transport layer. A Plan is parsed from a compact textual
// grammar and wraps any transport.Conn or transport.Listener; the
// wrapped endpoints then misbehave on schedule — connections drop after
// a frame budget, frames arrive late, accepted connections are rejected
// during a listener blackout, a peer goes silent mid-stream — letting
// the resilience layer (internal/resilience) be exercised repeatably in
// tests and demos without a lossy network.
//
// Determinism is the point: every randomized quantity (latency jitter)
// derives from the plan's seed, and every discrete fault fires on an
// exact frame or accept index, so a chaos run either reproduces
// bit-for-bit or the regression is real.
//
// # Plan grammar
//
// A plan is a comma-separated list of directives:
//
//	seed=N          seed for latency jitter (default 1)
//	drop@N          force-close the connection after N frames; the k-th
//	                drop directive arms only after k-1 drops have fired,
//	                and the frame count restarts on each new connection
//	stall@N=DUR     before delivering the N-th received frame, go silent
//	                for DUR (fires once per directive, in order)
//	sendlat=DUR     add ~DUR (seeded jitter, 0.5x-1.5x) to every send
//	recvlat=DUR     add ~DUR (seeded jitter, 0.5x-1.5x) to every receive
//	blackout@N=M    after the listener's N-th accept, immediately close
//	                the next M accepted connections
//
// Example: "seed=7,drop@40,drop@40,blackout@1=2" drops the connection
// twice (each after 40 frames) and, after the first successful accept,
// slams the door on the next two redial attempts.
//
// The whole layer compiles out under the nofaultinject build tag:
// Enabled becomes a false constant, WrapConn/WrapListener return their
// argument unchanged, and no fault counters are registered.
package faultinject

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flexric/internal/telemetry"
)

// StallSpec is a parsed stall@N=DUR directive: before delivering the
// AtRecv-th received frame (1-based), receive goes silent for Dur.
type StallSpec struct {
	AtRecv uint64
	Dur    time.Duration
}

// BlackoutSpec is a parsed blackout@N=M directive: after the After-th
// accept event, the next Count accepted connections are closed
// immediately instead of being handed to the server.
type BlackoutSpec struct {
	After uint64
	Count uint64
}

// Plan is a parsed fault schedule. A nil *Plan is valid and injects
// nothing, so call sites can thread an optional plan without guards.
// The zero value likewise injects nothing.
//
// A Plan carries shared runtime state (which drop has fired, how many
// accepts the listener has seen), so one Plan instance scripts one
// fault timeline across every connection it wraps — including
// reconnects, which is what makes "drop twice, then stay up" scriptable.
type Plan struct {
	// Seed drives latency jitter. Parsed from seed=N; defaults to 1.
	Seed int64
	// Drops holds drop@N frame budgets in directive order.
	Drops []uint64
	// Stalls holds stall@N=DUR directives in directive order.
	Stalls []StallSpec
	// SendLat/RecvLat are per-frame added latencies (sendlat=/recvlat=).
	SendLat time.Duration
	RecvLat time.Duration
	// Blackouts holds blackout@N=M windows over the accept-event index.
	Blackouts []BlackoutSpec

	state planState
	tel   planTel
}

// planState is the shared mutable fault timeline.
type planState struct {
	dropsFired      atomic.Uint64 // index of the next armed Drops entry
	stallsFired     atomic.Uint64 // index of the next armed Stalls entry
	acceptEvents    atomic.Uint64 // listener accept events, 1-based
	blackoutRejects atomic.Uint64 // connections closed by blackout windows

	mu  sync.Mutex
	rng *rand.Rand
}

// planTel holds the plan's fault counters; populated by init() in the
// default build, left nil when fault injection is compiled out.
type planTel struct {
	drops     *telemetry.Counter
	stalls    *telemetry.Counter
	blackouts *telemetry.Counter
	latency   *telemetry.Counter
}

// Parse builds a Plan from the grammar above. The empty string (and a
// string of only separators) parses to a nil plan: no faults.
func Parse(s string) (*Plan, error) {
	p := &Plan{Seed: 1}
	any := false
	for _, dir := range strings.Split(s, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		if err := p.parseDirective(dir); err != nil {
			return nil, fmt.Errorf("faultinject: directive %q: %w", dir, err)
		}
		any = true
	}
	if !any {
		return nil, nil
	}
	p.state.rng = rand.New(rand.NewSource(p.Seed))
	p.init()
	return p, nil
}

// MustParse is Parse for test and demo fixtures with known-good plans.
func MustParse(s string) *Plan {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Plan) parseDirective(dir string) error {
	key, val, hasVal := strings.Cut(dir, "=")
	switch {
	case key == "seed":
		if !hasVal {
			return fmt.Errorf("want seed=N")
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return err
		}
		p.Seed = n
	case key == "sendlat":
		if !hasVal {
			return fmt.Errorf("want sendlat=DUR")
		}
		d, err := time.ParseDuration(val)
		if err != nil {
			return err
		}
		p.SendLat = d
	case key == "recvlat":
		if !hasVal {
			return fmt.Errorf("want recvlat=DUR")
		}
		d, err := time.ParseDuration(val)
		if err != nil {
			return err
		}
		p.RecvLat = d
	case strings.HasPrefix(key, "drop@"):
		if hasVal {
			return fmt.Errorf("drop@N takes no value")
		}
		n, err := strconv.ParseUint(key[len("drop@"):], 10, 64)
		if err != nil {
			return err
		}
		p.Drops = append(p.Drops, n)
	case strings.HasPrefix(key, "stall@"):
		if !hasVal {
			return fmt.Errorf("want stall@N=DUR")
		}
		n, err := strconv.ParseUint(key[len("stall@"):], 10, 64)
		if err != nil {
			return err
		}
		d, err := time.ParseDuration(val)
		if err != nil {
			return err
		}
		p.Stalls = append(p.Stalls, StallSpec{AtRecv: n, Dur: d})
	case strings.HasPrefix(key, "blackout@"):
		if !hasVal {
			return fmt.Errorf("want blackout@N=M")
		}
		n, err := strconv.ParseUint(key[len("blackout@"):], 10, 64)
		if err != nil {
			return err
		}
		m, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return err
		}
		if m == 0 {
			return fmt.Errorf("blackout count must be positive")
		}
		p.Blackouts = append(p.Blackouts, BlackoutSpec{After: n, Count: m})
	default:
		return fmt.Errorf("unknown directive")
	}
	return nil
}

// String renders the plan back in the grammar (canonical directive
// order: seed, drops, stalls, latencies, blackouts). A nil plan renders
// empty.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.Seed != 1 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	for _, n := range p.Drops {
		parts = append(parts, fmt.Sprintf("drop@%d", n))
	}
	for _, s := range p.Stalls {
		parts = append(parts, fmt.Sprintf("stall@%d=%v", s.AtRecv, s.Dur))
	}
	if p.SendLat > 0 {
		parts = append(parts, fmt.Sprintf("sendlat=%v", p.SendLat))
	}
	if p.RecvLat > 0 {
		parts = append(parts, fmt.Sprintf("recvlat=%v", p.RecvLat))
	}
	for _, b := range p.Blackouts {
		parts = append(parts, fmt.Sprintf("blackout@%d=%d", b.After, b.Count))
	}
	return strings.Join(parts, ",")
}

// DropsFired reports how many drop directives have fired so far.
func (p *Plan) DropsFired() uint64 {
	if p == nil {
		return 0
	}
	return p.state.dropsFired.Load()
}

// BlackoutRejects reports how many accepted connections have been closed
// by blackout windows so far.
func (p *Plan) BlackoutRejects() uint64 {
	if p == nil {
		return 0
	}
	return p.state.blackoutRejects.Load()
}
