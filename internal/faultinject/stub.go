//go:build nofaultinject

package faultinject

import "flexric/internal/transport"

// WrapConn returns c unchanged: fault injection is compiled out.
func (p *Plan) WrapConn(c transport.Conn) transport.Conn { return c }

// WrapListener returns l unchanged: fault injection is compiled out.
func (p *Plan) WrapListener(l transport.Listener) transport.Listener { return l }

func (p *Plan) init() {}
