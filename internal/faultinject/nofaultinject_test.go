//go:build nofaultinject

package faultinject

import (
	"testing"

	"flexric/internal/transport"
)

// With the nofaultinject tag, plans still parse (flags stay accepted)
// but wrapping is the identity: the chaos machinery is compiled out.
func TestCompiledOut(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false under the nofaultinject tag")
	}
	p := MustParse("seed=7,drop@0,blackout@0=1")
	l, err := transport.Listen(transport.KindPipe, "fi-stub")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	c, err := transport.Dial(transport.KindPipe, "fi-stub")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if p.WrapConn(c) != c {
		t.Error("WrapConn must be identity when compiled out")
	}
	if p.WrapListener(l) != l {
		t.Error("WrapListener must be identity when compiled out")
	}
	// drop@0 would kill the first send if injection were live.
	if err := c.Send([]byte("x")); err != nil {
		t.Errorf("send through stubbed plan: %v", err)
	}
}
