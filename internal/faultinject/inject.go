//go:build !nofaultinject

package faultinject

import (
	"fmt"
	"sync/atomic"
	"time"

	"flexric/internal/telemetry"
	"flexric/internal/transport"
)

// init registers the plan's fault counters. Counters are fetched per
// plan (not per package) so a registry Reset between experiment runs
// re-registers them with the next parsed plan.
func (p *Plan) init() {
	p.tel = planTel{
		drops:     telemetry.NewCounter("faultinject.drops_fired"),
		stalls:    telemetry.NewCounter("faultinject.stalls_fired"),
		blackouts: telemetry.NewCounter("faultinject.blackout_rejects"),
		latency:   telemetry.NewCounter("faultinject.latency_injections"),
	}
}

func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

// WrapConn returns c with the plan's connection faults applied. A nil
// plan returns c unchanged. The wrapper preserves the optional
// transport interfaces of the inner connection: receive deadlines are
// forwarded, and RecvTimer is exposed only when the inner connection
// measures reassembly (so a wrapped pipe conn still reports no
// reassembly time, matching the unwrapped behavior).
func (p *Plan) WrapConn(c transport.Conn) transport.Conn {
	if p == nil || c == nil {
		return c
	}
	fc := &faultConn{p: p, inner: c}
	if _, ok := c.(transport.RecvTimer); ok {
		return &faultConnTimer{fc}
	}
	return fc
}

// WrapListener returns l with the plan's blackout windows applied, and
// every accepted connection wrapped via WrapConn. A nil plan returns l
// unchanged.
func (p *Plan) WrapListener(l transport.Listener) transport.Listener {
	if p == nil || l == nil {
		return l
	}
	return &faultListener{p: p, inner: l}
}

// fireDrop reports whether the armed drop directive should fire for a
// connection that has moved frames frames. The directives share one
// fired-index: exactly one connection fires each directive, and a
// directive arms only after its predecessors fired — so redial attempts
// rejected by a blackout never consume a drop budget.
func (p *Plan) fireDrop(frames uint64) bool {
	for {
		idx := p.state.dropsFired.Load()
		if idx >= uint64(len(p.Drops)) || frames < p.Drops[idx] {
			return false
		}
		if p.state.dropsFired.CompareAndSwap(idx, idx+1) {
			inc(p.tel.drops)
			return true
		}
	}
}

// fireStall returns the silent period to impose before delivering the
// next received frame (recvs frames received so far on this conn), or 0.
func (p *Plan) fireStall(recvs uint64) time.Duration {
	for {
		idx := p.state.stallsFired.Load()
		if idx >= uint64(len(p.Stalls)) || recvs+1 < p.Stalls[idx].AtRecv {
			return 0
		}
		if p.state.stallsFired.CompareAndSwap(idx, idx+1) {
			inc(p.tel.stalls)
			return p.Stalls[idx].Dur
		}
	}
}

// delay returns the jittered injection latency for a configured base
// (uniform in [0.5x, 1.5x), seeded), or 0 when none is configured.
func (p *Plan) delay(base time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	p.state.mu.Lock()
	f := 0.5 + p.state.rng.Float64()
	p.state.mu.Unlock()
	inc(p.tel.latency)
	return time.Duration(float64(base) * f)
}

// blackout reports whether accept event ev (1-based) falls inside a
// blackout window.
func (p *Plan) blackout(ev uint64) bool {
	for _, b := range p.Blackouts {
		if ev > b.After && ev <= b.After+b.Count {
			return true
		}
	}
	return false
}

// faultConn applies the plan's per-connection faults: frame-budget
// drops, scripted receive stalls, and jittered send/receive latency.
type faultConn struct {
	p     *Plan
	inner transport.Conn

	// dropped latches once this connection fires a drop directive: a
	// dead connection must not consume further directives, or senders
	// retrying on it would burn through the whole drop budget before the
	// reconnected transport sees any traffic.
	dropped atomic.Bool

	// Frame counters are atomics: each is written by exactly one
	// direction (the transport contract forbids concurrent Send/Send and
	// Recv/Recv), but the drop budget sums both, so each direction reads
	// the other's counter.
	sent  atomic.Uint64
	recvs atomic.Uint64
}

// Send implements transport.Conn.
func (c *faultConn) Send(b []byte) error {
	if c.dropped.Load() {
		return transport.ErrClosed
	}
	if c.p.fireDrop(c.sent.Load() + c.recvs.Load()) {
		c.dropped.Store(true)
		c.inner.Close()
		return transport.ErrClosed
	}
	if d := c.p.delay(c.p.SendLat); d > 0 {
		time.Sleep(d)
	}
	if err := c.inner.Send(b); err != nil {
		return err
	}
	c.sent.Add(1)
	return nil
}

// SendBatch implements transport.BatchSender. The batch counts one
// frame per message against the drop budget, but the drop check happens
// once up front: a batch is one wire operation, so it drops (or
// survives) atomically, exactly like the stream transport's single
// vectored write.
func (c *faultConn) SendBatch(msgs [][]byte) error {
	if c.dropped.Load() {
		return transport.ErrClosed
	}
	if c.p.fireDrop(c.sent.Load() + c.recvs.Load()) {
		c.dropped.Store(true)
		c.inner.Close()
		return transport.ErrClosed
	}
	if d := c.p.delay(c.p.SendLat); d > 0 {
		time.Sleep(d)
	}
	if err := transport.SendBatch(c.inner, msgs); err != nil {
		return err
	}
	c.sent.Add(uint64(len(msgs)))
	return nil
}

// Recv implements transport.Conn. A stall sleeps before the inner Recv,
// so an absolute receive deadline set on the connection expires during
// the stall and surfaces as ErrTimeout — exactly how a silent peer
// looks to the dead-peer detector.
func (c *faultConn) Recv() ([]byte, error) { return c.recv(nil) }

// RecvBuf implements transport.BufRecver, forwarding the recycled
// buffer to the inner connection.
func (c *faultConn) RecvBuf(dst []byte) ([]byte, error) { return c.recv(dst) }

func (c *faultConn) recv(dst []byte) ([]byte, error) {
	if c.dropped.Load() {
		return nil, transport.ErrClosed
	}
	if c.p.fireDrop(c.sent.Load() + c.recvs.Load()) {
		c.dropped.Store(true)
		c.inner.Close()
		return nil, transport.ErrClosed
	}
	if d := c.p.fireStall(c.recvs.Load()); d > 0 {
		time.Sleep(d)
	}
	if d := c.p.delay(c.p.RecvLat); d > 0 {
		time.Sleep(d)
	}
	b, err := transport.RecvBuf(c.inner, dst)
	if err != nil {
		return nil, err
	}
	c.recvs.Add(1)
	return b, nil
}

// Close implements transport.Conn.
func (c *faultConn) Close() error { return c.inner.Close() }

// RemoteAddr implements transport.Conn.
func (c *faultConn) RemoteAddr() string { return c.inner.RemoteAddr() }

// SetRecvDeadline implements transport.RecvDeadliner by forwarding to
// the inner connection. Both shipped transports support deadlines; a
// hypothetical one that does not surfaces as an error here.
func (c *faultConn) SetRecvDeadline(t time.Time) error {
	rd, ok := c.inner.(transport.RecvDeadliner)
	if !ok {
		return fmt.Errorf("faultinject: %T does not support receive deadlines", c.inner)
	}
	return rd.SetRecvDeadline(t)
}

// faultConnTimer additionally forwards RecvTimer for inner connections
// that measure frame reassembly (the stream transport).
type faultConnTimer struct {
	*faultConn
}

// LastRecvDuration implements transport.RecvTimer.
func (c *faultConnTimer) LastRecvDuration() time.Duration {
	return c.inner.(transport.RecvTimer).LastRecvDuration()
}

// faultListener rejects accepted connections during blackout windows
// and fault-wraps the ones it lets through.
type faultListener struct {
	p     *Plan
	inner transport.Listener
}

// Accept implements transport.Listener. Connections accepted inside a
// blackout window are closed immediately and never handed to the
// server: the dialer's connection dies on first use, as if the RIC went
// dark right after the TCP handshake.
func (l *faultListener) Accept() (transport.Conn, error) {
	for {
		c, err := l.inner.Accept()
		if err != nil {
			return nil, err
		}
		ev := l.p.state.acceptEvents.Add(1)
		if l.p.blackout(ev) {
			c.Close()
			l.p.state.blackoutRejects.Add(1)
			inc(l.p.tel.blackouts)
			continue
		}
		return l.p.WrapConn(c), nil
	}
}

// Close implements transport.Listener.
func (l *faultListener) Close() error { return l.inner.Close() }

// Addr implements transport.Listener.
func (l *faultListener) Addr() string { return l.inner.Addr() }
