package faultinject

import (
	"testing"
	"time"
)

func TestParseFullGrammar(t *testing.T) {
	p, err := Parse("seed=7, drop@40,drop@40, stall@10=300ms, sendlat=2ms, recvlat=1ms, blackout@1=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 {
		t.Errorf("Seed = %d, want 7", p.Seed)
	}
	if len(p.Drops) != 2 || p.Drops[0] != 40 || p.Drops[1] != 40 {
		t.Errorf("Drops = %v, want [40 40]", p.Drops)
	}
	if len(p.Stalls) != 1 || p.Stalls[0] != (StallSpec{AtRecv: 10, Dur: 300 * time.Millisecond}) {
		t.Errorf("Stalls = %v", p.Stalls)
	}
	if p.SendLat != 2*time.Millisecond || p.RecvLat != time.Millisecond {
		t.Errorf("latencies = %v/%v", p.SendLat, p.RecvLat)
	}
	if len(p.Blackouts) != 1 || p.Blackouts[0] != (BlackoutSpec{After: 1, Count: 2}) {
		t.Errorf("Blackouts = %v", p.Blackouts)
	}
}

func TestParseRoundTrip(t *testing.T) {
	const in = "seed=7,drop@40,drop@40,stall@10=300ms,sendlat=2ms,recvlat=1ms,blackout@1=2"
	p := MustParse(in)
	if got := p.String(); got != in {
		t.Errorf("String() = %q, want %q", got, in)
	}
	// Re-parsing the rendering must yield the same plan spec.
	q := MustParse(p.String())
	if q.String() != in {
		t.Errorf("re-parse renders %q", q.String())
	}
}

func TestParseEmptyIsNil(t *testing.T) {
	for _, s := range []string{"", " ", ",,", " , "} {
		p, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", s, err)
		}
		if p != nil {
			t.Errorf("Parse(%q) = %+v, want nil plan", s, p)
		}
	}
	// A nil plan renders empty and reports no fired drops.
	var nilPlan *Plan
	if nilPlan.String() != "" || nilPlan.DropsFired() != 0 {
		t.Error("nil plan must be inert")
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"bogus",
		"seed",
		"seed=x",
		"drop@",
		"drop@7=3",
		"stall@5",
		"stall@x=1ms",
		"stall@5=zzz",
		"sendlat=fast",
		"blackout@1",
		"blackout@1=0",
		"blackout@x=1",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}
