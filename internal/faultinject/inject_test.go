//go:build !nofaultinject

package faultinject

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"flexric/internal/transport"
)

// pipePair dials a fresh in-process pipe and returns both ends plus the
// listener-side accept. The server end echoes nothing by itself; tests
// drive both ends directly for determinism.
func pipePair(t *testing.T, name string) (client, server transport.Conn) {
	t.Helper()
	l, err := transport.Listen(transport.KindPipe, name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := transport.Dial(transport.KindPipe, name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, <-accepted
}

// A drop@N directive must kill the connection on the operation after N
// frames, and exactly once.
func TestDropAfterFrames(t *testing.T) {
	p := MustParse("drop@3")
	client, server := pipePair(t, "fi-drop")
	fc := p.WrapConn(client)

	// 3 frames pass (the pipe buffers them, so sends do not block).
	for i := 0; i < 3; i++ {
		if err := fc.Send([]byte("x")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := fc.Send([]byte("x")); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("4th send = %v, want ErrClosed", err)
	}
	if got := p.DropsFired(); got != 1 {
		t.Fatalf("DropsFired = %d, want 1", got)
	}
	// The drop closed the inner conn: the peer still drains the three
	// buffered frames (socket semantics), then sees teardown.
	for i := 0; i < 3; i++ {
		if _, err := server.Recv(); err != nil {
			t.Fatalf("draining frame %d: %v", i, err)
		}
	}
	if _, err := server.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("peer Recv after drop = %v, want ErrClosed", err)
	}
}

// Drop directives share one fired-index: each directive fires exactly
// once across all connections wrapped by the plan, in order.
func TestDropsSharedAcrossConns(t *testing.T) {
	p := MustParse("drop@0,drop@0")
	for i := 0; i < 2; i++ {
		client, _ := pipePair(t, fmt.Sprintf("fi-shared-%d", i))
		fc := p.WrapConn(client)
		if err := fc.Send([]byte("x")); !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("conn %d first send = %v, want ErrClosed", i, err)
		}
	}
	if got := p.DropsFired(); got != 2 {
		t.Fatalf("DropsFired = %d, want 2", got)
	}
	// Budget exhausted: a third connection lives.
	client, server := pipePair(t, "fi-shared-3")
	fc := p.WrapConn(client)
	if err := fc.Send([]byte("alive")); err != nil {
		t.Fatalf("post-budget send: %v", err)
	}
	if b, err := server.Recv(); err != nil || string(b) != "alive" {
		t.Fatalf("peer got %q, %v", b, err)
	}
}

// A stall must hold back delivery so an armed receive deadline expires:
// the silent-peer signature the dead-peer detector looks for. The
// stream transport is used because its expired deadline fails the read
// even when the frame has already arrived — exactly a peer that went
// silent from the reader's point of view.
func TestStallTripsRecvDeadline(t *testing.T) {
	p := MustParse("stall@1=250ms")
	l, err := transport.Listen(transport.KindSCTPish, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := transport.Dial(transport.KindSCTPish, l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	fc := p.WrapConn(client)
	if err := server.Send([]byte("delayed")); err != nil {
		t.Fatal(err)
	}
	if err := fc.(transport.RecvDeadliner).SetRecvDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	_, err = fc.Recv()
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("Recv under stall = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(t0); elapsed < 250*time.Millisecond {
		t.Fatalf("stall not imposed: Recv returned after %v", elapsed)
	}
	// The stall fires once; with the deadline cleared the frame arrives.
	if err := fc.(transport.RecvDeadliner).SetRecvDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if b, err := fc.Recv(); err != nil || string(b) != "delayed" {
		t.Fatalf("post-stall Recv = %q, %v", b, err)
	}
}

// sendlat must inject jittered latency on every send, bounded by the
// documented [0.5x, 1.5x) envelope.
func TestSendLatency(t *testing.T) {
	p := MustParse("seed=3,sendlat=20ms")
	client, server := pipePair(t, "fi-lat")
	fc := p.WrapConn(client)
	go func() {
		for {
			if _, err := server.Recv(); err != nil {
				return
			}
		}
	}()
	const n = 5
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if err := fc.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(t0); elapsed < n*10*time.Millisecond {
		t.Fatalf("5 sends with sendlat=20ms took only %v", elapsed)
	}
}

// A blackout window must slam the door on freshly accepted connections
// without the server ever seeing them, then recover.
func TestListenerBlackout(t *testing.T) {
	p := MustParse("blackout@1=2")
	inner, err := transport.Listen(transport.KindSCTPish, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := p.WrapListener(inner)
	defer l.Close()

	accepted := make(chan transport.Conn, 4)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()

	dial := func() transport.Conn {
		t.Helper()
		c, err := transport.Dial(transport.KindSCTPish, l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}

	// Accept event 1: healthy round trip.
	c1 := dial()
	s1 := <-accepted
	if err := c1.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if b, err := s1.Recv(); err != nil || string(b) != "one" {
		t.Fatalf("first conn: %q, %v", b, err)
	}

	// Accept events 2 and 3 fall in the blackout: the dialer's conn dies
	// on first read, and the server's Accept never returns them.
	for i := 0; i < 2; i++ {
		c := dial()
		if _, err := c.Recv(); !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("blackout dial %d: Recv = %v, want ErrClosed", i, err)
		}
	}

	// Accept event 4: the window has passed.
	c4 := dial()
	s4 := <-accepted
	if err := c4.Send([]byte("four")); err != nil {
		t.Fatal(err)
	}
	if b, err := s4.Recv(); err != nil || string(b) != "four" {
		t.Fatalf("post-blackout conn: %q, %v", b, err)
	}
	select {
	case c := <-accepted:
		t.Fatalf("server saw a blacked-out conn: %v", c.RemoteAddr())
	default:
	}
}

// The wrapper must preserve the inner connection's optional interfaces:
// RecvTimer only where the inner conn measures reassembly.
func TestWrapPreservesOptionalInterfaces(t *testing.T) {
	p := MustParse("seed=1")

	pc, _ := pipePair(t, "fi-iface")
	wrapped := p.WrapConn(pc)
	if _, ok := wrapped.(transport.RecvTimer); ok {
		t.Error("wrapped pipe conn must not implement RecvTimer")
	}
	if _, ok := wrapped.(transport.RecvDeadliner); !ok {
		t.Error("wrapped pipe conn must implement RecvDeadliner")
	}

	l, err := transport.Listen(transport.KindSCTPish, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			defer c.Close()
			// Hold the conn open until the listener closes.
			_, _ = c.Recv()
		}
	}()
	sc, err := transport.Dial(transport.KindSCTPish, l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	swrapped := p.WrapConn(sc)
	if _, ok := swrapped.(transport.RecvTimer); !ok {
		t.Error("wrapped stream conn must implement RecvTimer")
	}
	if _, ok := swrapped.(transport.RecvDeadliner); !ok {
		t.Error("wrapped stream conn must implement RecvDeadliner")
	}
	if got, want := swrapped.RemoteAddr(), sc.RemoteAddr(); got != want {
		t.Errorf("RemoteAddr = %q, want %q", got, want)
	}

	// A nil plan wraps to the identity.
	var nilPlan *Plan
	if nilPlan.WrapConn(sc) != sc {
		t.Error("nil plan WrapConn must be identity")
	}
	if nilPlan.WrapListener(l) != l {
		t.Error("nil plan WrapListener must be identity")
	}
}
