package federation

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"flexric/internal/agent"
	"flexric/internal/e2ap"
	"flexric/internal/resilience"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/tsdb"
)

func waitUntil(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fastRes is the test resilience profile: sub-second detection and
// retention so failover completes in tens of milliseconds. Scaled up
// under the race detector (see race_test.go) so its slowdown cannot
// flap a healthy connection dead.
func fastRes() *resilience.Config {
	return &resilience.Config{
		KeepaliveInterval: raceTimeScale * 20 * time.Millisecond,
		DeadAfter:         raceTimeScale * 80 * time.Millisecond,
		RetainFor:         raceTimeScale * 120 * time.Millisecond,
		Backoff:           resilience.BackoffPolicy{Base: 10 * time.Millisecond, Max: raceTimeScale * 40 * time.Millisecond},
	}
}

// testAgent is a minimal monitored E2 node: one MAC stats function
// emitting one integer-valued UE report per tick, placed on the ring by
// a Placer and re-homed by the same Placer on reconnect.
type testAgent struct {
	a    *agent.Agent
	fn   *sm.StatsFunction
	stop chan struct{}
	wg   sync.WaitGroup
}

func startTestAgent(t *testing.T, nodeID uint64, ring *Ring, addrs map[string]string) *testAgent {
	t.Helper()
	fn := sm.NewStatsFunction(sm.IDMACStats, "test-mac", func(_ agent.ControllerID, now int64) [][]byte {
		rep := &sm.MACReport{CellTimeMS: now, UEs: []sm.MACUEEntry{{
			RNTI: 5, CQI: 10, ThroughputBps: float64(nodeID*1000 + uint64(now%97)),
		}}}
		return [][]byte{sm.EncodeMACReport(sm.SchemeFB, rep)}
	})
	pl := NewPlacer(ring, addrs, nodeID)
	ta := &testAgent{fn: fn, stop: make(chan struct{})}
	ta.a = agent.New(agent.Config{
		NodeID:     e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: nodeID},
		Scheme:     e2ap.SchemeFB,
		Resilience: fastRes(),
		Rehome:     pl.Rehome,
	})
	if err := ta.a.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	home, err := pl.Home()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ta.a.Connect(home); err != nil {
		t.Fatal(err)
	}
	ta.wg.Add(1)
	go func() {
		defer ta.wg.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				fn.Tick(time.Now().UnixMilli())
			case <-ta.stop:
				return
			}
		}
	}()
	return ta
}

func (ta *testAgent) Close() {
	close(ta.stop)
	ta.wg.Wait()
	ta.a.Close()
}

// TestFederationFailover is the package-level end-to-end: 3 shards + 6
// agents behind a root. It pins (a) consistent-hash routing of agents
// and subscription legs, (b) the federated HTTP aggregate equals a
// direct merge over the shard stores, (c) shard kill → takeover +
// re-home to the ring successor + stream resume, and (d) the federated
// aggregate over the pre-kill window is unchanged by the failover.
func TestFederationFailover(t *testing.T) {
	dir := t.TempDir()
	members := []string{"s0", "s1", "s2"}
	ring := NewRing(64, members...)

	shards := make(map[string]*Shard)
	for i, name := range members {
		sh, err := NewShard(ShardConfig{
			Name: name, Index: i,
			E2Scheme: e2ap.SchemeFB, SMScheme: sm.SchemeFB,
			SouthAddr: "127.0.0.1:0", ObsAddr: "127.0.0.1:0",
			SnapshotDir: dir,
			Resilience:  fastRes(),
			PeriodMS:    5,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sh.Close()
		shards[name] = sh
	}
	root, err := NewRoot(RootConfig{
		Ring: ring, E2Scheme: e2ap.SchemeFB,
		ListenAddr: "127.0.0.1:0",
		Resilience: fastRes(), CoordPeriodMS: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	for _, sh := range shards {
		if err := sh.ConnectRoot(root.Addr()); err != nil {
			t.Fatal(err)
		}
	}

	addrs := make(map[string]string)
	for name, sh := range shards {
		addrs[name] = sh.SouthAddr()
	}
	const nAgents = 6
	var agents []*testAgent
	for id := uint64(1); id <= nAgents; id++ {
		ta := startTestAgent(t, id, ring, addrs)
		defer ta.Close()
		agents = append(agents, ta)
	}

	// Every agent lands on its ring owner, per the root's registry.
	waitUntil(t, "all agents registered at their owners", 5*time.Second, func() bool {
		for id := uint64(1); id <= nAgents; id++ {
			name, serving := root.ShardOwning(id)
			if !serving || name != ring.Owner(id) {
				return false
			}
		}
		return true
	})

	// Cross-shard subscription routing: one fleet-level leg per agent.
	var mu sync.Mutex
	inds := make(map[uint64]int)
	for id := uint64(1); id <= nAgents; id++ {
		key := id
		_, err := root.Subscribe(key, sm.IDMACStats,
			sm.EncodeTrigger(sm.SchemeFB, sm.Trigger{PeriodMS: 5}),
			[]e2ap.Action{{ID: 1, Type: e2ap.ActionReport}},
			server.SubscriptionCallbacks{OnIndication: func(ev server.IndicationEvent) {
				if rep, err := sm.DecodeMACReport(ev.Env.IndicationPayload()); err == nil && len(rep.UEs) == 1 {
					mu.Lock()
					inds[key]++
					mu.Unlock()
				}
			}})
		if err != nil {
			t.Fatalf("subscribe agent %d: %v", key, err)
		}
	}
	indCount := func(key uint64) int {
		mu.Lock()
		defer mu.Unlock()
		return inds[key]
	}
	waitUntil(t, "root indications from every agent", 5*time.Second, func() bool {
		for id := uint64(1); id <= nAgents; id++ {
			if indCount(id) == 0 {
				return false
			}
		}
		return true
	})
	// Let the shards ingest a solid window of samples.
	waitUntil(t, "ingested history on every shard", 5*time.Second, func() bool {
		total := 0
		for _, sh := range shards {
			total += sh.DB().NumSeries()
		}
		return total >= nAgents*5 // 5 MAC fields per agent
	})
	time.Sleep(150 * time.Millisecond)

	// Baseline: federated HTTP aggregate over a fixed absolute window
	// equals a direct partial merge over the shard stores.
	to := time.Now().UnixNano()
	fedAgg, ok, err := root.FederatedAggregate("all", "mac", "all", "throughput_bps", 0, to)
	if err != nil || !ok {
		t.Fatalf("federated aggregate: ok=%v err=%v", ok, err)
	}
	var direct tsdb.PartialAgg
	for _, sh := range shards {
		for _, info := range sh.DB().List(-1, sm.IDMACStats) {
			if info.Key.Field != tsdb.FieldThroughputBps {
				continue
			}
			if p, ok := sh.DB().PartialAggregate(info.Key, 0, to); ok {
				direct.Merge(&p)
			}
		}
	}
	directAgg, _ := direct.Finish()
	if fedAgg.Count != directAgg.Count || fedAgg.Min != directAgg.Min ||
		fedAgg.Max != directAgg.Max || fedAgg.Mean != directAgg.Mean {
		t.Fatalf("HTTP fan-out disagrees with direct merge:\n http   %+v\n direct %+v", fedAgg, directAgg)
	}

	// Kill the shard owning agent 1.
	victim := ring.Owner(1)
	var orphans []uint64
	for id := uint64(1); id <= nAgents; id++ {
		if ring.Owner(id) == victim {
			orphans = append(orphans, id)
		}
	}
	preKill := make(map[uint64]int)
	for _, id := range orphans {
		preKill[id] = indCount(id)
	}
	if err := shards[victim].Close(); err != nil {
		t.Fatalf("close victim: %v", err)
	}

	// Every orphan re-homes to its ring successor among the survivors.
	live := func(m string) bool { return m != victim }
	waitUntil(t, "orphans re-homed to ring successors", 10*time.Second, func() bool {
		for _, id := range orphans {
			name, serving := root.ShardOwning(id)
			if !serving || name != ring.OwnerLive(id, live) {
				return false
			}
		}
		return true
	})
	// The monitoring stream resumes through the replayed legs.
	waitUntil(t, "root indications resume for orphans", 10*time.Second, func() bool {
		for _, id := range orphans {
			if indCount(id) <= preKill[id] {
				return false
			}
		}
		return true
	})

	// The pre-kill window is eventually intact: the successors restore
	// the victim's snapshot, so the same federated query over [0, to]
	// converges to the identical aggregate with one shard fewer. Poll
	// rather than assert once — streams re-home as soon as the orphan
	// agents redial, which can be before the root even declares the
	// victim dead and sends the takeover orders that restore history.
	var fedAgg2 tsdb.Agg
	waitUntil(t, "pre-kill window restored on successors", 10*time.Second, func() bool {
		a, ok, err := root.FederatedAggregate("all", "mac", "all", "throughput_bps", 0, to)
		if err != nil || !ok {
			return false
		}
		fedAgg2 = a
		return a.Count == fedAgg.Count && a.Min == fedAgg.Min &&
			a.Max == fedAgg.Max && a.Mean == fedAgg.Mean
	})
	if d := p95BucketDist(fedAgg2.P95, fedAgg.P95); d > 1 {
		t.Fatalf("p95 moved %d buckets across failover: %v vs %v", d, fedAgg2.P95, fedAgg.P95)
	}

	snap, okSnap := root.Snapshot().(FedSnapshot)
	if !okSnap {
		t.Fatal("snapshot type")
	}
	if snap.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", snap.Failovers)
	}
	alive := 0
	for _, sh := range snap.Shards {
		if sh.Alive {
			alive++
		} else if sh.Name != victim {
			t.Fatalf("unexpected dead shard %s", sh.Name)
		}
	}
	if alive != 2 {
		t.Fatalf("%d shards alive, want 2", alive)
	}
}

func p95BucketDist(a, b float64) int {
	if a <= 0 || b <= 0 {
		if a == b {
			return 0
		}
		return 1 << 20
	}
	d := int(histIdxForTest(a)) - int(histIdxForTest(b))
	if d < 0 {
		d = -d
	}
	return d
}

// histIdxForTest mirrors tsdb's histogram bucketing (gamma 1.08) for
// the cross-failover p95 assertion.
func histIdxForTest(v float64) int {
	g := 1.08
	idx := 0
	for x := 1.0; x*g <= v; x *= g {
		idx++
	}
	return idx
}

// TestWireRoundTrip pins the coordination wire forms.
func TestWireRoundTrip(t *testing.T) {
	key, inner, err := UnwrapTrigger(WrapTrigger(0xdeadbeef, []byte{1, 2, 3}))
	if err != nil || key != 0xdeadbeef || len(inner) != 3 {
		t.Fatalf("trigger round trip: key=%x inner=%v err=%v", key, inner, err)
	}
	if _, _, err := UnwrapTrigger([]byte{1}); err == nil {
		t.Fatal("short trigger accepted")
	}
	rep, err := DecodeReport(EncodeReport(&Report{Name: "s1", E2: "a", Obs: "b", Agents: []uint64{1, 2}}))
	if err != nil || rep.Name != "s1" || len(rep.Agents) != 2 {
		t.Fatalf("report round trip: %+v err=%v", rep, err)
	}
	tk, err := DecodeTakeover(EncodeTakeover(&Takeover{From: "s0", Agents: []uint64{7}}))
	if err != nil || tk.From != "s0" || len(tk.Agents) != 1 {
		t.Fatalf("takeover round trip: %+v err=%v", tk, err)
	}
	trig, err := DecodeCoordTrigger(EncodeCoordTrigger(CoordTrigger{PeriodMS: 50}))
	if err != nil || trig.PeriodMS != 50 {
		t.Fatalf("coord trigger round trip: %+v err=%v", trig, err)
	}
	if fmt.Sprint(SnapshotFile("/tmp/x", "s1")) != "/tmp/x/shard-s1.tsdb" {
		t.Fatal("snapshot file name")
	}
}
