package federation

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"flexric/internal/e2ap"
	"flexric/internal/resilience"
	"flexric/internal/server"
	"flexric/internal/transport"
	"flexric/internal/tsdb"
)

// RootConfig parameterizes the federation root.
type RootConfig struct {
	// Ring is the shared placement contract (same members and replica
	// count every shard and agent placer uses).
	Ring      *Ring
	E2Scheme  e2ap.Scheme
	Transport transport.Kind
	// ListenAddr is where shard northbound agents connect (":0" ok).
	ListenAddr string
	// Resilience drives failover detection: a shard is declared dead
	// when its association drops and stays down past RetainFor. Keep
	// RetainFor short here — it is the failover latency floor.
	Resilience *resilience.Config
	// CoordPeriodMS is the shard report period (default 100).
	CoordPeriodMS uint32
	// HTTPTimeout bounds each shard fan-out request (default 5s).
	HTTPTimeout time.Duration
}

// Root presents the whole shard fleet as one RIC: shards connect as
// agents (the recursive idiom one level up), cross-shard subscriptions
// are routed to the owner shard with RequestIDs remapped by the E2
// machinery, federated queries fan out to shard obs servers and merge
// mergeable partials, and a dead shard triggers takeover orders to the
// ring successors of its agents.
type Root struct {
	cfg    RootConfig
	srv    *server.Server
	addr   string
	client *http.Client

	mu        sync.Mutex
	shards    map[string]*shardState
	byAgentID map[server.AgentID]string
	fedSubs   map[FedSubID]*fedSub
	nextSub   FedSubID
	failovers int
}

type shardState struct {
	name    string
	e2, obs string
	agentID server.AgentID
	alive   bool
	agents  map[uint64]bool
	lastNS  int64
}

// FedSubID identifies a federated subscription at the root.
type FedSubID int

type fedSub struct {
	key     uint64
	fnID    uint16
	trigger []byte
	actions []e2ap.Action
	cb      server.SubscriptionCallbacks
	shard   string
	sub     server.SubID
}

// NewRoot starts the root controller.
func NewRoot(cfg RootConfig) (*Root, error) {
	if cfg.Ring == nil {
		return nil, fmt.Errorf("federation: root needs a ring")
	}
	if cfg.CoordPeriodMS == 0 {
		cfg.CoordPeriodMS = 100
	}
	if cfg.HTTPTimeout == 0 {
		cfg.HTTPTimeout = 5 * time.Second
	}
	r := &Root{
		cfg:       cfg,
		client:    &http.Client{Timeout: cfg.HTTPTimeout},
		shards:    make(map[string]*shardState),
		byAgentID: make(map[server.AgentID]string),
		fedSubs:   make(map[FedSubID]*fedSub),
	}
	r.srv = server.New(server.Config{
		Scheme:     cfg.E2Scheme,
		Transport:  cfg.Transport,
		Resilience: cfg.Resilience,
	})
	r.srv.OnAgentConnect(func(info server.AgentInfo) { r.onShardConnect(info) })
	r.srv.OnAgentDisconnect(func(info server.AgentInfo) { r.onShardGone(info) })
	addr, err := r.srv.Start(cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	r.addr = addr
	return r, nil
}

// Addr returns the address shard northbound agents connect to.
func (r *Root) Addr() string { return r.addr }

// Server exposes the root's E2 server — the one the shards' northbound
// agents attach to — so a host process can hang a control-room
// Topology off it.
func (r *Root) Server() *server.Server { return r.srv }

// Close tears the root down.
func (r *Root) Close() error { return r.srv.Close() }

// onShardConnect subscribes to the coordination function of every
// connecting shard; the periodic reports build the registry.
func (r *Root) onShardConnect(info server.AgentInfo) {
	if !info.HasFunction(IDFedCoord) {
		return
	}
	_, _ = r.srv.Subscribe(info.ID, IDFedCoord,
		EncodeCoordTrigger(CoordTrigger{PeriodMS: r.cfg.CoordPeriodMS}),
		[]e2ap.Action{{ID: 1, Type: e2ap.ActionReport}},
		server.SubscriptionCallbacks{
			OnIndication: func(ev server.IndicationEvent) {
				rep, err := DecodeReport(ev.Env.IndicationPayload())
				if err != nil {
					return
				}
				r.applyReport(ev.Agent, rep)
			},
		})
}

func (r *Root) applyReport(id server.AgentID, rep *Report) {
	r.mu.Lock()
	st := r.shards[rep.Name]
	if st == nil {
		st = &shardState{name: rep.Name}
		r.shards[rep.Name] = st
	}
	st.e2, st.obs = rep.E2, rep.Obs
	st.agentID = id
	st.alive = true
	st.lastNS = rep.TS
	st.agents = make(map[uint64]bool, len(rep.Agents))
	for _, k := range rep.Agents {
		st.agents[k] = true
	}
	r.byAgentID[id] = rep.Name
	r.mu.Unlock()
}

// onShardGone fires at retention expiry — the resilience layer already
// waited RetainFor for the shard to come back, so this is the death
// verdict and the failover trigger.
func (r *Root) onShardGone(info server.AgentInfo) {
	r.mu.Lock()
	name, ok := r.byAgentID[info.ID]
	delete(r.byAgentID, info.ID)
	r.mu.Unlock()
	if ok {
		r.failover(name)
	}
}

// liveOwnerLocked returns the first live shard in key's preference
// order. Caller holds r.mu.
func (r *Root) liveOwnerLocked(key uint64) string {
	return r.cfg.Ring.OwnerLive(key, func(m string) bool {
		st := r.shards[m]
		return st != nil && st.alive
	})
}

// failover re-homes a dead shard's responsibilities: takeover orders
// (snapshot restore) go to each orphaned agent's ring successor, and
// every federated subscription leg on the dead shard is re-placed
// there — the successor parks the leg until the agent itself re-homes,
// then the stream resumes.
func (r *Root) failover(name string) {
	r.mu.Lock()
	st := r.shards[name]
	if st == nil || !st.alive {
		r.mu.Unlock()
		return
	}
	st.alive = false
	r.failovers++
	// Group the orphans by their ring successor among live shards.
	takeovers := make(map[string][]uint64)
	for key := range st.agents {
		if succ := r.liveOwnerLocked(key); succ != "" {
			takeovers[succ] = append(takeovers[succ], key)
		}
	}
	type order struct {
		agentID server.AgentID
		payload []byte
	}
	var orders []order
	for succ, keys := range takeovers {
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		orders = append(orders, order{
			agentID: r.shards[succ].agentID,
			payload: EncodeTakeover(&Takeover{From: name, Agents: keys}),
		})
	}
	var orphanLegs []*fedSub
	for _, fs := range r.fedSubs {
		if fs.shard == name {
			orphanLegs = append(orphanLegs, fs)
		}
	}
	r.mu.Unlock()

	for _, o := range orders {
		ch := make(chan error, 1)
		if err := r.srv.Control(o.agentID, IDFedCoord, nil, o.payload, true,
			func(_ []byte, err error) { ch <- err }); err == nil {
			<-ch
		}
	}
	for _, fs := range orphanLegs {
		_ = r.replaceLeg(fs)
	}
}

// replaceLeg re-places one federated subscription on the current live
// owner of its key.
func (r *Root) replaceLeg(fs *fedSub) error {
	r.mu.Lock()
	owner := r.liveOwnerLocked(fs.key)
	if owner == "" {
		r.mu.Unlock()
		return fmt.Errorf("federation: no live shard for agent %d", fs.key)
	}
	agentID := r.shards[owner].agentID
	r.mu.Unlock()
	sub, err := r.srv.Subscribe(agentID, fs.fnID, WrapTrigger(fs.key, fs.trigger), fs.actions, fs.cb)
	if err != nil {
		return err
	}
	r.mu.Lock()
	fs.shard, fs.sub = owner, sub
	r.mu.Unlock()
	return nil
}

// Subscribe routes a fleet-level subscription to the shard owning the
// agent key: exactly one shard carries each leg, with the trigger
// wrapped so the shard can resolve the local target. The callbacks see
// byte-identical indications to a direct subscription.
func (r *Root) Subscribe(key uint64, fnID uint16, trigger []byte, actions []e2ap.Action, cb server.SubscriptionCallbacks) (FedSubID, error) {
	fs := &fedSub{
		key:     key,
		fnID:    fnID,
		trigger: append([]byte(nil), trigger...),
		actions: actions,
		cb:      cb,
	}
	if err := r.replaceLeg(fs); err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.nextSub++
	id := r.nextSub
	r.fedSubs[id] = fs
	r.mu.Unlock()
	return id, nil
}

// Unsubscribe removes a federated subscription.
func (r *Root) Unsubscribe(id FedSubID) error {
	r.mu.Lock()
	fs, ok := r.fedSubs[id]
	delete(r.fedSubs, id)
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("federation: unknown subscription %d", id)
	}
	return r.srv.Unsubscribe(fs.sub, fs.fnID)
}

// NumSubscriptions returns the live federated subscription count.
func (r *Root) NumSubscriptions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.fedSubs)
}

// --- federated query fan-out ---

// partialEnvelope mirrors the shard obs server's /tsdb/partial
// response.
type partialEnvelope struct {
	Series  int                  `json:"series"`
	Agg     tsdb.PartialAgg      `json:"agg"`
	Buckets []tsdb.PartialBucket `json:"buckets,omitempty"`
}

// liveObsAddrs snapshots the obs base URLs of live shards.
func (r *Root) liveObsAddrs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, st := range r.shards {
		if st.alive && st.obs != "" {
			out = append(out, st.obs)
		}
	}
	sort.Strings(out)
	return out
}

// fanOutPartial queries every live shard's /tsdb/partial with the given
// parameters and merges the responses. shardsHit counts shards that
// answered, series the matched series across them.
func (r *Root) fanOutPartial(params url.Values) (merged partialEnvelope, shardsHit int, err error) {
	addrs := r.liveObsAddrs()
	if len(addrs) == 0 {
		return merged, 0, fmt.Errorf("federation: no live shards")
	}
	type result struct {
		env partialEnvelope
		err error
	}
	results := make([]result, len(addrs))
	var wg sync.WaitGroup
	for i, base := range addrs {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			resp, err := r.client.Get(base + "/tsdb/partial?" + params.Encode())
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				results[i].err = fmt.Errorf("federation: shard query: %s", resp.Status)
				return
			}
			results[i].err = json.NewDecoder(resp.Body).Decode(&results[i].env)
		}(i, base)
	}
	wg.Wait()
	for _, res := range results {
		if res.err != nil {
			// A shard dying mid-query is expected during failover; the
			// merge proceeds over the shards that answered.
			continue
		}
		shardsHit++
		merged.Series += res.env.Series
		merged.Agg.Merge(&res.env.Agg)
		merged.Buckets = tsdb.MergePartialWindows(merged.Buckets, res.env.Buckets)
	}
	if shardsHit == 0 {
		return merged, 0, fmt.Errorf("federation: every shard query failed")
	}
	return merged, shardsHit, nil
}

func partialParams(agent, fn, ue, field string, from, to, stepNS int64) url.Values {
	v := url.Values{}
	v.Set("agent", agent)
	v.Set("fn", fn)
	v.Set("ue", ue)
	v.Set("field", field)
	v.Set("from", strconv.FormatInt(from, 10))
	v.Set("to", strconv.FormatInt(to, 10))
	if stepNS > 0 {
		v.Set("step_ms", strconv.FormatInt(stepNS/int64(time.Millisecond), 10))
	}
	return v
}

// FederatedAggregate merges the [from, to] aggregate of every matching
// series across live shards. agent and ue accept "all" or a number; fn
// a number or mac/rlc/pdcp alias.
func (r *Root) FederatedAggregate(agent, fn, ue, field string, from, to int64) (tsdb.Agg, bool, error) {
	env, _, err := r.fanOutPartial(partialParams(agent, fn, ue, field, from, to, 0))
	if err != nil {
		return tsdb.Agg{}, false, err
	}
	agg, ok := env.Agg.Finish()
	return agg, ok, nil
}

// FederatedWindow is the windowed form: aligned shard windows merged
// bucket-by-bucket.
func (r *Root) FederatedWindow(agent, fn, ue, field string, from, to, stepNS int64) ([]tsdb.Bucket, error) {
	env, _, err := r.fanOutPartial(partialParams(agent, fn, ue, field, from, to, stepNS))
	if err != nil {
		return nil, err
	}
	out := make([]tsdb.Bucket, len(env.Buckets))
	for i := range env.Buckets {
		out[i] = tsdb.Bucket{FromTS: env.Buckets[i].FromTS, ToTS: env.Buckets[i].ToTS}
		if agg, ok := env.Buckets[i].Agg.Finish(); ok {
			out[i].Agg = agg
		}
	}
	return out, nil
}

// fedQueryResponse is the federated /tsdb/query envelope. It mirrors
// the single-store response's result fields and adds fan-out metadata.
type fedQueryResponse struct {
	Field   string        `json:"field"`
	Shards  int           `json:"shards"`
	Series  int           `json:"series"`
	Agg     *tsdb.Agg     `json:"agg,omitempty"`
	Buckets []tsdb.Bucket `json:"buckets,omitempty"`
}

// QueryHandler serves the /tsdb/query contract over the federation:
// aggregate and window modes fan out to every live shard and merge
// (agent/ue additionally accept "all"); last=K proxies to the shard
// owning the agent. Mount on an obs server with
// obs.WithFederatedQuery.
func (r *Root) QueryHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		agent, fn, ue := q.Get("agent"), q.Get("fn"), q.Get("ue")
		field := q.Get("field")
		if agent == "" || fn == "" || ue == "" || field == "" {
			http.Error(w, "need agent, fn, ue, field", http.StatusBadRequest)
			return
		}
		stepNS := int64(0)
		if v := q.Get("step_ms"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				http.Error(w, "bad step_ms parameter", http.StatusBadRequest)
				return
			}
			stepNS = n * int64(time.Millisecond)
		}
		var from, to int64
		switch {
		case q.Get("last") != "":
			r.proxyLast(w, req, agent)
			return
		case q.Get("window_ms") != "":
			wms, err := strconv.ParseInt(q.Get("window_ms"), 10, 64)
			if err != nil || wms <= 0 {
				http.Error(w, "bad window_ms parameter", http.StatusBadRequest)
				return
			}
			to = time.Now().UnixNano()
			from = to - wms*int64(time.Millisecond)
		case q.Get("from") != "" && q.Get("to") != "":
			var err1, err2 error
			from, err1 = strconv.ParseInt(q.Get("from"), 10, 64)
			to, err2 = strconv.ParseInt(q.Get("to"), 10, 64)
			if err1 != nil || err2 != nil || to <= from {
				http.Error(w, "bad from/to parameters", http.StatusBadRequest)
				return
			}
		default:
			http.Error(w, "need last, window_ms, or from/to", http.StatusBadRequest)
			return
		}
		env, hit, err := r.fanOutPartial(partialParams(agent, fn, ue, field, from, to, stepNS))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		resp := fedQueryResponse{Field: field, Shards: hit, Series: env.Series}
		if stepNS > 0 {
			resp.Buckets = make([]tsdb.Bucket, len(env.Buckets))
			for i := range env.Buckets {
				resp.Buckets[i] = tsdb.Bucket{FromTS: env.Buckets[i].FromTS, ToTS: env.Buckets[i].ToTS}
				if agg, ok := env.Buckets[i].Agg.Finish(); ok {
					resp.Buckets[i].Agg = agg
				}
			}
		} else {
			agg, ok := env.Agg.Finish()
			if !ok {
				http.Error(w, "no samples in range", http.StatusNotFound)
				return
			}
			resp.Agg = &agg
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	}
}

// proxyLast forwards a last=K query to the shard owning the agent (the
// raw-sample mode has no cross-shard merge: one shard holds the series).
func (r *Root) proxyLast(w http.ResponseWriter, req *http.Request, agent string) {
	key, err := strconv.ParseUint(agent, 10, 64)
	if err != nil {
		http.Error(w, "last=K needs a numeric agent", http.StatusBadRequest)
		return
	}
	r.mu.Lock()
	owner := r.liveOwnerLocked(key)
	var base string
	if owner != "" {
		base = r.shards[owner].obs
	}
	r.mu.Unlock()
	if base == "" {
		http.Error(w, "no live shard for agent", http.StatusBadGateway)
		return
	}
	resp, err := r.client.Get(base + "/tsdb/query?" + req.URL.RawQuery)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
		}
		if rerr != nil {
			return
		}
	}
}

// --- federation snapshot (for /federation.json and the topology tier) ---

// ShardSummary is one shard's row in the federation snapshot.
type ShardSummary struct {
	Name         string   `json:"name"`
	E2           string   `json:"e2"`
	Obs          string   `json:"obs"`
	Alive        bool     `json:"alive"`
	Agents       int      `json:"agents"`
	AgentIDs     []uint64 `json:"agent_ids"`
	LastReportNS int64    `json:"last_report_ns"`
}

// FedSnapshot is the root's /federation.json payload.
type FedSnapshot struct {
	TS        int64          `json:"ts"`
	Members   []string       `json:"members"`
	Shards    []ShardSummary `json:"shards"`
	Subs      int            `json:"subs"`
	Failovers int            `json:"failovers"`
}

// Snapshot returns the federation-tier snapshot (pass to
// obs.WithFederation and ctrl.TopoWithFederation).
func (r *Root) Snapshot() any {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := FedSnapshot{
		TS:        time.Now().UnixNano(),
		Members:   r.cfg.Ring.Members(),
		Subs:      len(r.fedSubs),
		Failovers: r.failovers,
	}
	names := make([]string, 0, len(r.shards))
	for name := range r.shards {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := r.shards[name]
		sum := ShardSummary{
			Name: st.name, E2: st.e2, Obs: st.obs, Alive: st.alive,
			Agents: len(st.agents), LastReportNS: st.lastNS,
		}
		for k := range st.agents {
			sum.AgentIDs = append(sum.AgentIDs, k)
		}
		sort.Slice(sum.AgentIDs, func(i, j int) bool { return sum.AgentIDs[i] < sum.AgentIDs[j] })
		snap.Shards = append(snap.Shards, sum)
	}
	return snap
}

// ShardOwning reports which live shard currently owns an agent key and
// whether that shard's last report lists the agent as served.
func (r *Root) ShardOwning(key uint64) (name string, serving bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name = r.liveOwnerLocked(key)
	if st := r.shards[name]; st != nil {
		serving = st.agents[key]
	}
	return name, serving
}
