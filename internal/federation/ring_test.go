package federation

import (
	"math/rand"
	"testing"
)

// TestRingDeterminism pins the placement contract: rings built by
// different members from the same member set — in any order — agree on
// every key's owner and full preference order.
func TestRingDeterminism(t *testing.T) {
	a := NewRing(64, "s0", "s1", "s2", "s3")
	b := NewRing(64, "s3", "s1", "s0", "s2") // shuffled input
	c := NewRing(64, "s2", "s0", "s3", "s1", "s1")
	for key := uint64(0); key < 500; key++ {
		ao, bo, co := a.Owner(key), b.Owner(key), c.Owner(key)
		if ao != bo || ao != co {
			t.Fatalf("key %d: owners diverge: %q %q %q", key, ao, bo, co)
		}
		ap, bp := a.Preference(key), b.Preference(key)
		if len(ap) != len(bp) {
			t.Fatalf("key %d: preference lengths diverge", key)
		}
		for i := range ap {
			if ap[i] != bp[i] {
				t.Fatalf("key %d: preference[%d] diverges: %q vs %q", key, i, ap[i], bp[i])
			}
		}
	}
}

// TestRingPreference checks the preference order starts at the owner
// and enumerates every member exactly once.
func TestRingPreference(t *testing.T) {
	r := NewRing(0, "s0", "s1", "s2")
	for key := uint64(1); key <= 100; key++ {
		pref := r.Preference(key)
		if len(pref) != 3 {
			t.Fatalf("key %d: preference has %d entries, want 3", key, len(pref))
		}
		if pref[0] != r.Owner(key) {
			t.Fatalf("key %d: preference[0]=%q, owner=%q", key, pref[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, m := range pref {
			if seen[m] {
				t.Fatalf("key %d: member %q repeated in preference", key, m)
			}
			seen[m] = true
		}
	}
}

// TestRingBalance places 1k agents on 16 shards and requires the most
// loaded shard to stay within 2x of the ideal share — the replicated
// virtual nodes doing their job.
func TestRingBalance(t *testing.T) {
	members := make([]string, 16)
	for i := range members {
		members[i] = "shard-" + string(rune('a'+i))
	}
	r := NewRing(DefaultReplicas, members...)
	counts := map[string]int{}
	rng := rand.New(rand.NewSource(42))
	const agents = 1000
	for i := 0; i < agents; i++ {
		counts[r.Owner(rng.Uint64())]++
	}
	ideal := float64(agents) / float64(len(members))
	for m, n := range counts {
		if float64(n) > 2*ideal {
			t.Errorf("shard %s owns %d agents (> 2x ideal %.1f)", m, n, ideal)
		}
	}
	if len(counts) != len(members) {
		t.Errorf("only %d of %d shards own agents", len(counts), len(members))
	}
}

// TestRingMinimalMovement checks the consistent-hashing property: when
// a member joins or leaves, only the keys it gains or owned move —
// every other key keeps its owner.
func TestRingMinimalMovement(t *testing.T) {
	base := NewRing(DefaultReplicas, "s0", "s1", "s2", "s3")
	grown := base.With("s4")
	shrunk := base.Without("s3")

	const keys = 2000
	movedOnJoin, movedOnLeave := 0, 0
	for key := uint64(0); key < keys; key++ {
		ob := base.Owner(key)
		og := grown.Owner(key)
		if ob != og {
			movedOnJoin++
			if og != "s4" {
				t.Fatalf("key %d moved %q -> %q on join; only moves to the new member are allowed", key, ob, og)
			}
		}
		os := shrunk.Owner(key)
		if ob != os {
			movedOnLeave++
			if ob != "s3" {
				t.Fatalf("key %d moved %q -> %q on leave; only s3's keys may move", key, ob, os)
			}
		}
	}
	// The moved fraction should be about 1/(n+1) on join and 1/n on
	// leave; allow generous slack but reject wholesale reshuffles.
	if movedOnJoin == 0 || movedOnJoin > keys/2 {
		t.Errorf("join moved %d/%d keys; expected a small non-zero fraction", movedOnJoin, keys)
	}
	if movedOnLeave == 0 || movedOnLeave > keys/2 {
		t.Errorf("leave moved %d/%d keys; expected a small non-zero fraction", movedOnLeave, keys)
	}
}

// TestRingOwnerLive checks liveness-filtered ownership walks the
// preference order.
func TestRingOwnerLive(t *testing.T) {
	r := NewRing(32, "s0", "s1", "s2")
	for key := uint64(1); key <= 50; key++ {
		pref := r.Preference(key)
		dead := map[string]bool{pref[0]: true}
		got := r.OwnerLive(key, func(m string) bool { return !dead[m] })
		if got != pref[1] {
			t.Fatalf("key %d: live owner %q, want ring successor %q", key, got, pref[1])
		}
		if r.OwnerLive(key, func(string) bool { return false }) != "" {
			t.Fatalf("key %d: expected no live owner", key)
		}
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r := NewRing(DefaultReplicas, "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(uint64(i))
	}
}
