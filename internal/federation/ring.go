// Package federation is the horizontal-scale tier over the recursive
// virtualization path (§6.2): N near-RT shard controllers each own a
// disjoint set of agents via consistent hashing over the agent key, and
// a root controller reuses the agent/server libraries to present the
// whole fleet as one RIC — cross-shard subscription routing, federated
// /tsdb/query fan-out with windowed-aggregate merge, and shard failover
// built on the resilience layer plus tsdb snapshot/restore.
//
// The ring is the shared placement contract: every member (root, every
// shard, every agent's Placer) builds it from the same member list and
// replica count and therefore computes identical ownership, with no
// coordination traffic. Liveness is layered on top: the effective owner
// of a key is the first *live* member in the key's preference order, so
// a dying shard's agents deterministically re-home to its ring
// successor. See docs/FEDERATION.md.
package federation

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-node count per member: enough that a
// 16-member ring stays within ~2x of ideal balance at 1k agents (the
// ring unit tests pin this).
const DefaultReplicas = 128

// Ring is an immutable consistent-hash ring. Construction is
// deterministic: the same members (in any order) and replica count
// always produce the same ring, so independently-built rings agree on
// ownership.
type Ring struct {
	replicas int
	members  []string // sorted, distinct
	points   []point  // sorted by hash
}

type point struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring with replicas virtual nodes per member
// (replicas <= 0 selects DefaultReplicas). Duplicate member names are
// collapsed.
func NewRing(replicas int, members ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	set := make(map[string]bool, len(members))
	var ms []string
	for _, m := range members {
		if !set[m] {
			set[m] = true
			ms = append(ms, m)
		}
	}
	sort.Strings(ms)
	r := &Ring{replicas: replicas, members: ms}
	r.points = make([]point, 0, len(ms)*replicas)
	for mi, m := range ms {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{hash: vnodeHash(m, v), member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (vanishingly rare) break on the member order so the
		// ring stays deterministic regardless of input order.
		return a.member < b.member
	})
	return r
}

// Members returns the ring's member names, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// NumMembers returns the member count.
func (r *Ring) NumMembers() int { return len(r.members) }

// With returns a new ring with member added (no-op copy if present).
func (r *Ring) With(member string) *Ring {
	return NewRing(r.replicas, append(r.Members(), member)...)
}

// Without returns a new ring with member removed.
func (r *Ring) Without(member string) *Ring {
	var ms []string
	for _, m := range r.members {
		if m != member {
			ms = append(ms, m)
		}
	}
	return NewRing(r.replicas, ms...)
}

// mix64 is the murmur3 fmix64 finalizer. FNV-1a alone leaves inputs
// that differ only in their trailing bytes (sequential node IDs,
// sequential vnode indices) clustered in a narrow band of the 64-bit
// space — one multiply of diffusion barely reaches the high bits the
// ring ordering is dominated by. The finalizer gives full avalanche so
// points and keys spread uniformly.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// vnodeHash positions one virtual node: FNV-1a over "member#v",
// finalized by mix64.
func vnodeHash(member string, v int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(member))
	var buf [9]byte
	buf[0] = '#'
	binary.BigEndian.PutUint64(buf[1:], uint64(v))
	_, _ = h.Write(buf[:])
	return mix64(h.Sum64())
}

// KeyHash maps an agent key (the global E2 node ID) onto the ring:
// FNV-1a over the 8 big-endian bytes, finalized by mix64.
func KeyHash(key uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], key)
	_, _ = h.Write(buf[:])
	return mix64(h.Sum64())
}

// succ returns the index of the first point at or after h, wrapping.
func (r *Ring) succ(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the member owning key, ignoring liveness. Empty ring
// returns "".
func (r *Ring) Owner(key uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.members[r.points[r.succ(KeyHash(key))].member]
}

// Preference returns every member in the key's ring-walk order: the
// owner first, then each distinct member met walking clockwise. The
// failover contract follows from it — when the owner dies, the key's
// new home is the next live entry (its "ring successor").
func (r *Ring) Preference(key uint64) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.members))
	seen := make([]bool, len(r.members))
	start := r.succ(KeyHash(key))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// OwnerLive returns the first member in key's preference order for
// which live returns true, or "" when none is live.
func (r *Ring) OwnerLive(key uint64, live func(string) bool) string {
	for _, m := range r.Preference(key) {
		if live(m) {
			return m
		}
	}
	return ""
}

// Placer computes where one agent connects: the owner of its key for
// the first dial, then — fed to agent.Config.Rehome — the key's
// preference order walked by consecutive failed attempts, so the agent
// re-homes to the ring successor when its shard dies and self-heals
// back (attempt counts reset on every successful reconnect).
type Placer struct {
	ring  *Ring
	addrs map[string]string // member -> E2 address
	key   uint64
}

// NewPlacer builds a placer for one agent key over the shared ring and
// the member -> E2 address directory.
func NewPlacer(ring *Ring, e2Addrs map[string]string, key uint64) *Placer {
	return &Placer{ring: ring, addrs: e2Addrs, key: key}
}

// Home returns the owning shard's E2 address (the initial dial target).
func (p *Placer) Home() (string, error) {
	m := p.ring.Owner(p.key)
	if m == "" {
		return "", fmt.Errorf("federation: empty ring")
	}
	addr, ok := p.addrs[m]
	if !ok {
		return "", fmt.Errorf("federation: no address for shard %s", m)
	}
	return addr, nil
}

// Rehome implements agent.Config.Rehome: attempt n dials the n-th entry
// of the key's preference order (wrapping), so a dead owner is skipped
// after one failed redial and a recovered ring heals on the next cycle.
func (p *Placer) Rehome(attempt int, last string) string {
	pref := p.ring.Preference(p.key)
	if len(pref) == 0 {
		return last
	}
	m := pref[attempt%len(pref)]
	if addr, ok := p.addrs[m]; ok {
		return addr
	}
	return last
}
