package federation

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// IDFedCoord is the RAN-function ID of the federation coordination
// function every shard's northbound agent registers toward the root.
// It rides the ordinary E2 machinery: the root subscribes to it for
// periodic shard reports and uses its control endpoint for takeover
// orders during failover. The ID lives above the sm package's range
// (140..148) so it can never shadow a real service model.
const IDFedCoord uint16 = 150

// FedOID is the coordination function's OID.
const FedOID = "fed-coord"

// WrapTrigger prefixes an event trigger with the 8-byte big-endian
// agent key (the target's global E2 node ID). The root wraps every
// cross-shard subscription trigger this way; the shard unwraps it to
// find which of its agents the leg targets and forwards the inner
// trigger unchanged.
func WrapTrigger(key uint64, inner []byte) []byte {
	out := make([]byte, 8+len(inner))
	binary.BigEndian.PutUint64(out, key)
	copy(out[8:], inner)
	return out
}

// UnwrapTrigger splits a wrapped trigger back into the agent key and
// the inner trigger.
func UnwrapTrigger(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("federation: trigger too short for agent key (%d bytes)", len(b))
	}
	return binary.BigEndian.Uint64(b), b[8:], nil
}

// Report is the shard's periodic coordination indication: who it is,
// where its planes listen, and which agents (by global E2 node ID) it
// currently serves. The root's registry is built entirely from these.
type Report struct {
	Name   string   `json:"name"`
	E2     string   `json:"e2"`
	Obs    string   `json:"obs"`
	Agents []uint64 `json:"agents"`
	TS     int64    `json:"ts"`
}

// CoordTrigger parameterizes the coordination subscription.
type CoordTrigger struct {
	PeriodMS uint32 `json:"period_ms"`
}

// Takeover is the failover order the root sends a surviving shard over
// the coordination function's control endpoint: adopt the listed agents
// of the dead shard From, restoring their series from From's snapshot.
type Takeover struct {
	From   string   `json:"from"`
	Agents []uint64 `json:"agents"`
}

// EncodeReport / DecodeReport, and friends: the coordination plane is
// low-rate (one report per shard per period), so plain JSON keeps the
// wire format debuggable without touching the SM codecs.

func EncodeReport(r *Report) []byte { b, _ := json.Marshal(r); return b }

func DecodeReport(b []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("federation: bad report: %w", err)
	}
	return &r, nil
}

func EncodeCoordTrigger(t CoordTrigger) []byte { b, _ := json.Marshal(t); return b }

func DecodeCoordTrigger(b []byte) (CoordTrigger, error) {
	var t CoordTrigger
	if err := json.Unmarshal(b, &t); err != nil {
		return t, fmt.Errorf("federation: bad coord trigger: %w", err)
	}
	return t, nil
}

func EncodeTakeover(t *Takeover) []byte { b, _ := json.Marshal(t); return b }

func DecodeTakeover(b []byte) (*Takeover, error) {
	var t Takeover
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("federation: bad takeover: %w", err)
	}
	return &t, nil
}

// SnapshotFile names the tsdb snapshot a shard maintains under the
// federation snapshot directory — the file its ring successor restores
// on takeover.
func SnapshotFile(dir, name string) string {
	return dir + "/shard-" + name + ".tsdb"
}
