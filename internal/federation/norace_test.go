//go:build !race

package federation

// raceTimeScale is 1 in ordinary builds; see race_test.go.
const raceTimeScale = 1
