package federation

import (
	"fmt"
	"os"
	"sync"
	"time"

	"flexric/internal/agent"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/obs"
	"flexric/internal/resilience"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/transport"
	"flexric/internal/tsdb"
)

// ShardConfig parameterizes one near-RT shard controller.
type ShardConfig struct {
	// Name is the shard's ring member name.
	Name string
	// Index distinguishes the shard's northbound node identity
	// (NodeID 9000+Index), mirroring the recursive controller's 8000.
	Index     int
	E2Scheme  e2ap.Scheme
	SMScheme  sm.Scheme
	Transport transport.Kind
	// SouthAddr is where the shard's agents connect (":0" for ephemeral).
	SouthAddr string
	// ObsAddr is where the shard's observability server (and therefore
	// its /tsdb/partial fan-out endpoint) listens.
	ObsAddr string
	// SnapshotDir, when non-empty, is the shared directory of shard
	// tsdb snapshots: this shard maintains SnapshotFile(dir, Name) and
	// restores a dead peer's file on takeover. Empty disables failover
	// state transfer (streams still re-home, history does not).
	SnapshotDir string
	// SnapshotEvery adds a periodic snapshot on top of the final
	// snapshot Close always writes (0 = final-only).
	SnapshotEvery time.Duration
	// Resilience parameterizes both planes: southbound retention/replay
	// for the shard's agents and the northbound reconnect supervisor
	// toward the root.
	Resilience *resilience.Config
	// PeriodMS is the monitor's report period (default 1).
	PeriodMS uint32
}

// Shard is one near-RT controller of the federation: a full controller
// core (server + monitor + tsdb + obs) for the agents consistent
// hashing assigns it, plus a northbound agent presenting those agents
// to the root through proxy RAN functions — the recursive.go idiom one
// level up.
type Shard struct {
	cfg       ShardConfig
	srv       *server.Server
	mon       *ctrl.Monitor
	db        *tsdb.Store
	obsSrv    *obs.Server
	north     *agent.Agent
	southAddr string

	mu     sync.Mutex
	byNode map[uint64]server.AgentID
	nodeOf map[server.AgentID]uint64
	// pending holds root subscription legs whose target agent has not
	// connected yet — the window during failover between the root
	// re-placing a leg and the orphaned agent re-homing here. Fulfilled
	// in onAgent.
	pending []*pendingLeg
	// northSubs maps root-side requests to the local subscriptions
	// backing them, RequestID-remapped like recursive.go's northSubs.
	northSubs map[legKey]server.SubID

	stopCh    chan struct{}
	snapDone  <-chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

type legKey struct {
	ctrl agent.ControllerID
	req  e2ap.RequestID
	fnID uint16
}

type pendingLeg struct {
	key     uint64
	fnID    uint16
	inner   []byte
	actions []e2ap.Action
	tx      agent.IndicationSender
	lk      legKey
}

// NewShard starts the shard's south server, monitor, obs server, and
// northbound agent (attach to the root with ConnectRoot).
func NewShard(cfg ShardConfig) (*Shard, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("federation: shard needs a name")
	}
	s := &Shard{
		cfg:       cfg,
		db:        tsdb.New(tsdb.Config{}),
		byNode:    make(map[uint64]server.AgentID),
		nodeOf:    make(map[server.AgentID]uint64),
		northSubs: make(map[legKey]server.SubID),
		stopCh:    make(chan struct{}),
	}
	s.srv = server.New(server.Config{
		Scheme:     cfg.E2Scheme,
		Transport:  cfg.Transport,
		Resilience: cfg.Resilience,
	})
	// Series are keyed by the agent's global node ID, not the
	// transport-assigned AgentID: the shard's snapshot then stays
	// meaningful on whichever shard restores it during failover.
	s.mon = ctrl.NewMonitor(s.srv, ctrl.MonitorConfig{
		Scheme:      cfg.SMScheme,
		PeriodMS:    cfg.PeriodMS,
		Decode:      true,
		TSDB:        s.db,
		SeriesAgent: func(info server.AgentInfo) uint32 { return uint32(info.NodeID.NodeID) },
		// Node-ID-keyed series are collision-free, so keep them across
		// disconnects: a transient keepalive flap after a takeover must
		// not destroy the history adopt() just restored. Single-home
		// ownership is enforced by adopt's own eviction pass instead.
		RetainSeries: true,
	})
	s.srv.OnAgentConnect(func(info server.AgentInfo) { s.onAgent(info) })
	s.srv.OnAgentDisconnect(func(info server.AgentInfo) { s.onAgentGone(info) })

	addr, err := s.srv.Start(cfg.SouthAddr)
	if err != nil {
		return nil, err
	}
	s.southAddr = addr
	s.obsSrv, err = obs.NewServer(cfg.ObsAddr, obs.WithTSDB(s.db))
	if err != nil {
		s.srv.Close()
		return nil, err
	}

	s.north = agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{
			PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB,
			NodeID: uint64(9000 + cfg.Index),
		},
		Scheme:     cfg.E2Scheme,
		Transport:  cfg.Transport,
		Resilience: cfg.Resilience,
	})
	fns := []agent.RANFunction{
		&proxyFn{s: s, fnID: sm.IDMACStats, oid: "fed-mac"},
		&proxyFn{s: s, fnID: sm.IDRLCStats, oid: "fed-rlc"},
		&proxyFn{s: s, fnID: sm.IDPDCPStats, oid: "fed-pdcp"},
		&coordFn{s: s},
	}
	for _, fn := range fns {
		if err := s.north.RegisterFunction(fn); err != nil {
			s.obsSrv.Close()
			s.srv.Close()
			return nil, err
		}
	}
	if cfg.SnapshotDir != "" && cfg.SnapshotEvery > 0 {
		s.snapDone = s.db.SnapshotEvery(SnapshotFile(cfg.SnapshotDir, cfg.Name),
			cfg.SnapshotEvery, s.stopCh, nil)
	}
	return s, nil
}

// ConnectRoot attaches the shard to the root controller.
func (s *Shard) ConnectRoot(rootAddr string) error {
	_, err := s.north.Connect(rootAddr)
	return err
}

// SouthAddr returns the address the shard's agents connect to.
func (s *Shard) SouthAddr() string { return s.southAddr }

// ObsAddr returns the shard's observability base address (host:port).
func (s *Shard) ObsAddr() string { return s.obsSrv.Addr() }

// Name returns the shard's ring member name.
func (s *Shard) Name() string { return s.cfg.Name }

// DB returns the shard's time-series store.
func (s *Shard) DB() *tsdb.Store { return s.db }

// Monitor returns the shard's monitoring iApp.
func (s *Shard) Monitor() *ctrl.Monitor { return s.mon }

// AgentKeys returns the global node IDs of the currently served agents.
func (s *Shard) AgentKeys() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.byNode))
	for k := range s.byNode {
		out = append(out, k)
	}
	return out
}

// Close tears the shard down, writing the final failover snapshot so a
// killed shard's successor can restore its series. Idempotent.
func (s *Shard) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.stopCh)
		s.wg.Wait()
		if s.snapDone != nil {
			// The snapshot loop writes a final snapshot on stop; wait so
			// ours below cannot race an older in-flight write.
			<-s.snapDone
		}
		// The failover snapshot must be written BEFORE the south server
		// goes down: closing it disconnects every agent, and the monitor
		// evicts a disconnected agent's series — snapshotting after that
		// would hand the ring successor an empty store.
		if s.cfg.SnapshotDir != "" {
			err = s.db.SaveFile(SnapshotFile(s.cfg.SnapshotDir, s.cfg.Name))
		}
		s.north.Close()
		if serr := s.srv.Close(); err == nil {
			err = serr
		}
		s.mon.Close()
		if cerr := s.obsSrv.Close(); err == nil {
			err = cerr
		}
	})
	return err
}

// onAgent registers a new south agent and fulfills any root legs parked
// for it — the failover path where the root re-placed a subscription
// before the orphaned agent finished re-homing.
func (s *Shard) onAgent(info server.AgentInfo) {
	key := info.NodeID.NodeID
	s.mu.Lock()
	s.byNode[key] = info.ID
	s.nodeOf[info.ID] = key
	var due []*pendingLeg
	rest := s.pending[:0]
	for _, p := range s.pending {
		if p.key == key {
			due = append(due, p)
		} else {
			rest = append(rest, p)
		}
	}
	s.pending = rest
	s.mu.Unlock()
	for _, p := range due {
		if sub, err := s.placeLeg(info.ID, p.fnID, p.inner, p.actions, p.tx); err == nil {
			s.mu.Lock()
			s.northSubs[p.lk] = sub
			s.mu.Unlock()
		}
	}
}

func (s *Shard) onAgentGone(info server.AgentInfo) {
	s.mu.Lock()
	if key, ok := s.nodeOf[info.ID]; ok {
		delete(s.nodeOf, info.ID)
		if s.byNode[key] == info.ID {
			delete(s.byNode, key)
		}
	}
	s.mu.Unlock()
}

// placeLeg subscribes southbound and pumps every indication north
// unchanged — header and payload pass through byte-for-byte, so the
// root sees exactly what a direct subscription would deliver.
func (s *Shard) placeLeg(aid server.AgentID, fnID uint16, inner []byte, actions []e2ap.Action, tx agent.IndicationSender) (server.SubID, error) {
	return s.srv.Subscribe(aid, fnID, inner, actions, server.SubscriptionCallbacks{
		OnIndication: func(ev server.IndicationEvent) {
			_ = tx.SendIndication(1, e2ap.IndicationReport, ev.Env.IndicationHeader(), ev.Env.IndicationPayload())
		},
	})
}

// adopt executes a takeover order: restore the dead shard's snapshot,
// then evict every restored agent that re-homed to some other shard so
// each key's history lives on exactly one shard.
func (s *Shard) adopt(t *Takeover) error {
	if s.cfg.SnapshotDir == "" {
		return fmt.Errorf("federation: shard %s has no snapshot dir", s.cfg.Name)
	}
	path := SnapshotFile(s.cfg.SnapshotDir, t.From)
	if err := s.db.LoadFile(path); err != nil {
		if os.IsNotExist(err) {
			return nil // dead shard never snapshotted; streams still re-home
		}
		return err
	}
	adopted := make(map[uint32]bool, len(t.Agents))
	for _, k := range t.Agents {
		adopted[uint32(k)] = true
	}
	s.mu.Lock()
	for k := range s.byNode {
		adopted[uint32(k)] = true
	}
	s.mu.Unlock()
	seen := make(map[uint32]bool)
	for _, info := range s.db.List(-1, 0) {
		seen[info.Key.Agent] = true
	}
	for a := range seen {
		if !adopted[a] {
			s.db.EvictAgent(a)
		}
	}
	return nil
}

// --- northbound proxy RAN function ---

// proxyFn exposes one monitoring SM to the root: subscriptions carry a
// WrapTrigger'd agent key, indications pass through unchanged.
type proxyFn struct {
	s    *Shard
	fnID uint16
	oid  string
}

func (f *proxyFn) Definition() e2ap.RANFunctionItem {
	return e2ap.RANFunctionItem{ID: f.fnID, Revision: 1, OID: f.oid}
}

func (f *proxyFn) OnSubscription(ctrl agent.ControllerID, req *e2ap.SubscriptionRequest, tx agent.IndicationSender) error {
	s := f.s
	key, inner, err := UnwrapTrigger(req.EventTrigger)
	if err != nil {
		return err
	}
	// The request's byte slices alias codec buffers; copy what outlives
	// this call (the pending stash and the southbound subscribe).
	inner = append([]byte(nil), inner...)
	actions := make([]e2ap.Action, len(req.Actions))
	for i, a := range req.Actions {
		actions[i] = a
		actions[i].Definition = append([]byte(nil), a.Definition...)
	}
	lk := legKey{ctrl: ctrl, req: req.RequestID, fnID: f.fnID}
	s.mu.Lock()
	aid, connected := s.byNode[key]
	if !connected {
		s.pending = append(s.pending, &pendingLeg{
			key: key, fnID: f.fnID, inner: inner, actions: actions, tx: tx, lk: lk,
		})
		s.mu.Unlock()
		// Admit the leg: it completes when the agent arrives (the
		// failover re-home window).
		return nil
	}
	s.mu.Unlock()
	sub, err := s.placeLeg(aid, f.fnID, inner, actions, tx)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.northSubs[lk] = sub
	s.mu.Unlock()
	return nil
}

func (f *proxyFn) OnSubscriptionDelete(ctrl agent.ControllerID, req *e2ap.SubscriptionDeleteRequest) error {
	s := f.s
	lk := legKey{ctrl: ctrl, req: req.RequestID, fnID: f.fnID}
	s.mu.Lock()
	sub, ok := s.northSubs[lk]
	delete(s.northSubs, lk)
	if !ok {
		// Still parked: drop the pending leg instead.
		for i, p := range s.pending {
			if p.lk == lk {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				s.mu.Unlock()
				return nil
			}
		}
		s.mu.Unlock()
		return fmt.Errorf("federation: unknown subscription")
	}
	s.mu.Unlock()
	return s.srv.Unsubscribe(sub, f.fnID)
}

func (f *proxyFn) OnControl(agent.ControllerID, *e2ap.ControlRequest) ([]byte, error) {
	return nil, fmt.Errorf("federation: monitoring proxy has no control endpoint")
}

// --- coordination RAN function ---

// coordFn is the federation control plane: the root subscribes for
// periodic Reports and sends Takeover orders through control.
type coordFn struct {
	s *Shard
}

func (f *coordFn) Definition() e2ap.RANFunctionItem {
	return e2ap.RANFunctionItem{ID: IDFedCoord, Revision: 1, OID: FedOID}
}

func (f *coordFn) OnSubscription(_ agent.ControllerID, req *e2ap.SubscriptionRequest, tx agent.IndicationSender) error {
	s := f.s
	trig, err := DecodeCoordTrigger(req.EventTrigger)
	if err != nil {
		return err
	}
	period := time.Duration(trig.PeriodMS) * time.Millisecond
	if period <= 0 {
		period = 100 * time.Millisecond
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(period)
		defer tick.Stop()
		send := func() {
			rep := &Report{
				Name:   s.cfg.Name,
				E2:     s.southAddr,
				Obs:    "http://" + s.obsSrv.Addr(),
				Agents: s.AgentKeys(),
				TS:     time.Now().UnixNano(),
			}
			_ = tx.SendIndication(1, e2ap.IndicationReport, nil, EncodeReport(rep))
		}
		send()
		for {
			select {
			case <-tick.C:
				send()
			case <-s.stopCh:
				return
			}
		}
	}()
	return nil
}

func (f *coordFn) OnSubscriptionDelete(agent.ControllerID, *e2ap.SubscriptionDeleteRequest) error {
	// Report pumps stop with the shard; per-subscription teardown is
	// not needed at one JSON message per period.
	return nil
}

func (f *coordFn) OnControl(_ agent.ControllerID, req *e2ap.ControlRequest) ([]byte, error) {
	t, err := DecodeTakeover(req.Payload)
	if err != nil {
		return nil, err
	}
	if err := f.s.adopt(t); err != nil {
		return nil, err
	}
	return nil, nil
}
