//go:build race

package federation

// raceTimeScale stretches the test resilience profile under the race
// detector: its ~10x instrumentation overhead makes an 80 ms dead-peer
// verdict fire spuriously, and every spurious flap evicts the flapping
// agent's tsdb series — which breaks the pre-kill-window equality the
// failover test asserts.
const raceTimeScale = 5
