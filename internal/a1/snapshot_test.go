package a1

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func snapPolicy(id string, agent int) Policy {
	return Policy{
		ID: id, TypeID: TypeSliceSLA, Agent: agent, WindowMS: 500,
		Targets: []SliceTarget{{SliceID: 1, MinThroughputMbps: 40}},
	}
}

// TestSnapshotRoundTrip: policies, statuses, and the version counter
// survive a save/load cycle, and post-restore versions keep ascending.
func TestSnapshotRoundTrip(t *testing.T) {
	st := NewStore()
	if _, err := st.Create(snapPolicy("gold", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create(snapPolicy("silver", 1)); err != nil {
		t.Fatal(err)
	}
	// Bump silver to version 3 and record a verdict.
	if _, err := st.Update("silver", snapPolicy("silver", 1)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.SetStatus("gold", StatusViolated, "slice 1 throughput low"); !ok {
		t.Fatal("set status")
	}

	path := filepath.Join(t.TempDir(), "a1.snap")
	if err := st.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.List(), restored.List()) {
		t.Fatalf("restored store differs:\n orig %+v\n rest %+v", st.List(), restored.List())
	}
	got, ok := restored.Get("gold")
	if !ok || got.Status != StatusViolated || got.Reason != "slice 1 throughput low" {
		t.Fatalf("gold state: %+v", got)
	}

	// The version counter carried over: the next mutation is version 4,
	// not a reused 1.
	ns, err := restored.Create(snapPolicy("bronze", 2))
	if err != nil {
		t.Fatal(err)
	}
	if ns.Policy.Version != 4 {
		t.Fatalf("post-restore version = %d, want 4", ns.Policy.Version)
	}
}

// TestSnapshotMissingAndCorrupt: a missing file is a fresh start, any
// byte flip in the payload fails the CRC.
func TestSnapshotMissingAndCorrupt(t *testing.T) {
	st := NewStore()
	if err := st.LoadFile(filepath.Join(t.TempDir(), "absent.snap")); err != nil {
		t.Fatalf("missing snapshot must be a fresh start: %v", err)
	}
	if _, err := st.Create(snapPolicy("p", 0)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, at := range []int{5, 9, len(b) / 2, len(b) - 5} {
		bad := append([]byte(nil), b...)
		bad[at] ^= 0x40
		if err := NewStore().ReadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotFormat) {
			t.Fatalf("flip at %d: err = %v, want ErrSnapshotFormat", at, err)
		}
	}
	// Truncation at every point fails too.
	for cut := 1; cut < len(b); cut += 7 {
		if err := NewStore().ReadSnapshot(bytes.NewReader(b[:cut])); !errors.Is(err, ErrSnapshotFormat) {
			t.Fatalf("truncate at %d: err = %v", cut, err)
		}
	}
	// The intact stream still loads.
	if err := NewStore().ReadSnapshot(bytes.NewReader(b)); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotEvery: the loop writes the final snapshot on stop.
func TestSnapshotEvery(t *testing.T) {
	st := NewStore()
	if _, err := st.Create(snapPolicy("p", 0)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "a1.snap")
	stop := make(chan struct{})
	done := st.SnapshotEvery(path, time.Hour, stop, nil)
	close(stop)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("snapshot loop did not stop")
	}
	restored := NewStore()
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 1 {
		t.Fatalf("restored %d policies, want 1", restored.Len())
	}
}
