package a1

import (
	"errors"
	"sort"
	"sync"
	"time"

	"flexric/internal/telemetry"
)

// Store errors.
var (
	ErrExists   = errors.New("a1: policy already exists")
	ErrNotFound = errors.New("a1: policy not found")
)

var storeTel = struct {
	active      *telemetry.Gauge
	created     *telemetry.Counter
	updated     *telemetry.Counter
	deleted     *telemetry.Counter
	transitions *telemetry.Counter
}{
	active:      telemetry.NewGauge("a1.policies_active"),
	created:     telemetry.NewCounter("a1.policies_created"),
	updated:     telemetry.NewCounter("a1.policies_updated"),
	deleted:     telemetry.NewCounter("a1.policies_deleted"),
	transitions: telemetry.NewCounter("a1.status_transitions"),
}

// State is one policy plus its live enforcement state — the unit the
// northbound returns and the stream channel carries.
type State struct {
	Policy Policy `json:"policy"`
	Status Status `json:"status"`
	// Reason explains the current status in operator terms ("slice 1
	// p50 throughput 29.8 Mbps < target 45.0", ...).
	Reason string `json:"reason,omitempty"`
	// UpdatedNS is when the status last changed (Unix nanoseconds).
	UpdatedNS int64 `json:"updated_ns"`
	// Transitions counts status changes over the policy's lifetime.
	Transitions uint64 `json:"transitions"`
}

// EventType tags a store event.
type EventType string

// Store event types, as carried on the control-room a1 channel.
const (
	EventCreated EventType = "created"
	EventUpdated EventType = "updated"
	EventDeleted EventType = "deleted"
	EventStatus  EventType = "status"
)

// Event is one store mutation, delivered to the hook (and from there
// to the control-room a1 stream channel).
type Event struct {
	Type  EventType
	TS    int64 // Unix nanoseconds
	State State // copy of the policy state after the mutation
}

// Store is the versioned in-memory policy store. All methods are safe
// for concurrent use; the hook is invoked outside the store lock.
type Store struct {
	mu      sync.RWMutex
	pols    map[string]*State
	version uint64 // global monotonic version, bumped on create/update
	hook    func(Event)
}

// NewStore returns an empty policy store.
func NewStore() *Store {
	return &Store{pols: make(map[string]*State)}
}

// SetHook installs fn as the store's event hook (nil uninstalls). One
// hook at a time; the control-room hub is the intended consumer.
func (s *Store) SetHook(fn func(Event)) {
	s.mu.Lock()
	s.hook = fn
	s.mu.Unlock()
}

func (s *Store) fire(hook func(Event), typ EventType, st State) {
	if hook != nil {
		hook(Event{Type: typ, TS: time.Now().UnixNano(), State: st})
	}
}

// Create validates and inserts a new policy. The stored copy gets the
// next store version and status NOT_APPLIED.
func (s *Store) Create(p Policy) (State, error) {
	if err := p.Validate(); err != nil {
		return State{}, err
	}
	s.mu.Lock()
	if _, ok := s.pols[p.ID]; ok {
		s.mu.Unlock()
		return State{}, ErrExists
	}
	s.version++
	p.Version = s.version
	st := &State{
		Policy:    p,
		Status:    StatusNotApplied,
		Reason:    "awaiting enforcement",
		UpdatedNS: time.Now().UnixNano(),
	}
	s.pols[p.ID] = st
	n := len(s.pols)
	hook, out := s.hook, *st
	s.mu.Unlock()
	storeTel.created.Inc()
	storeTel.active.Set(int64(n))
	s.fire(hook, EventCreated, out)
	return out, nil
}

// Update validates and replaces an existing policy. The version is
// bumped and the status resets to NOT_APPLIED (the new targets have
// not been evaluated yet); the transition counter carries over.
func (s *Store) Update(id string, p Policy) (State, error) {
	p.ID = id
	if err := p.Validate(); err != nil {
		return State{}, err
	}
	s.mu.Lock()
	st, ok := s.pols[id]
	if !ok {
		s.mu.Unlock()
		return State{}, ErrNotFound
	}
	s.version++
	p.Version = s.version
	st.Policy = p
	st.Status = StatusNotApplied
	st.Reason = "updated; awaiting enforcement"
	st.UpdatedNS = time.Now().UnixNano()
	hook, out := s.hook, *st
	s.mu.Unlock()
	storeTel.updated.Inc()
	s.fire(hook, EventUpdated, out)
	return out, nil
}

// Delete removes a policy; ok is false if it did not exist.
func (s *Store) Delete(id string) (State, bool) {
	s.mu.Lock()
	st, ok := s.pols[id]
	if !ok {
		s.mu.Unlock()
		return State{}, false
	}
	delete(s.pols, id)
	n := len(s.pols)
	hook, out := s.hook, *st
	s.mu.Unlock()
	storeTel.deleted.Inc()
	storeTel.active.Set(int64(n))
	s.fire(hook, EventDeleted, out)
	return out, true
}

// Get returns a copy of one policy's state.
func (s *Store) Get(id string) (State, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.pols[id]
	if !ok {
		return State{}, false
	}
	return *st, true
}

// List returns copies of every policy state, sorted by ID.
func (s *Store) List() []State {
	s.mu.RLock()
	out := make([]State, 0, len(s.pols))
	for _, st := range s.pols {
		out = append(out, *st)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Policy.ID < out[j].Policy.ID })
	return out
}

// ActiveFor returns the policies targeting one agent, highest priority
// first (ID breaks ties) — the order the enforcement loop evaluates
// them in.
func (s *Store) ActiveFor(agent int) []State {
	s.mu.RLock()
	var out []State
	for _, st := range s.pols {
		if st.Policy.Agent == agent {
			out = append(out, *st)
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Policy.Priority != out[j].Policy.Priority {
			return out[i].Policy.Priority > out[j].Policy.Priority
		}
		return out[i].Policy.ID < out[j].Policy.ID
	})
	return out
}

// Agents returns the distinct agent IDs with at least one policy,
// ascending.
func (s *Store) Agents() []int {
	s.mu.RLock()
	seen := make(map[int]bool)
	for _, st := range s.pols {
		seen[st.Policy.Agent] = true
	}
	s.mu.RUnlock()
	out := make([]int, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// Len reports the stored policy count.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pols)
}

// SetStatus records an enforcement verdict for one policy. The event
// fires (and the transition counts) only when the status actually
// changes; reason-only refreshes update the stored reason silently so
// a steady VIOLATED tick stream does not flood the a1 channel.
// changed reports whether a transition happened; ok is false when the
// policy no longer exists.
func (s *Store) SetStatus(id string, status Status, reason string) (st State, changed, ok bool) {
	s.mu.Lock()
	cur, found := s.pols[id]
	if !found {
		s.mu.Unlock()
		return State{}, false, false
	}
	changed = cur.Status != status
	cur.Reason = reason
	if changed {
		cur.Status = status
		cur.UpdatedNS = time.Now().UnixNano()
		cur.Transitions++
	}
	hook, out := s.hook, *cur
	s.mu.Unlock()
	if changed {
		storeTel.transitions.Inc()
		s.fire(hook, EventStatus, out)
	}
	return out, changed, true
}

// StatusSummary is the GET /a1/status payload: the fleet-wide rollup
// plus every policy's live state.
type StatusSummary struct {
	Policies   int     `json:"policies"`
	Enforced   int     `json:"enforced"`
	Violated   int     `json:"violated"`
	NotApplied int     `json:"not_applied"`
	States     []State `json:"states"`
}

// Summary builds the /a1/status rollup.
func (s *Store) Summary() StatusSummary {
	states := s.List()
	sum := StatusSummary{Policies: len(states), States: states}
	for _, st := range states {
		switch st.Status {
		case StatusEnforced:
			sum.Enforced++
		case StatusViolated:
			sum.Violated++
		default:
			sum.NotApplied++
		}
	}
	return sum
}
