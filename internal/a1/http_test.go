package a1

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*Store, *httptest.Server) {
	t.Helper()
	st := NewStore()
	srv := httptest.NewServer(NewHandler(st))
	t.Cleanup(srv.Close)
	return st, srv
}

const policyBody = `{"id":"p1","typeId":"slice_sla_v1","agent":0,"windowMs":200,"targets":[{"sliceId":1,"minThroughputMbps":40}]}`

func TestHTTPPolicyLifecycle(t *testing.T) {
	st, srv := newTestServer(t)
	c := srv.Client()

	// Create.
	resp, err := c.Post(srv.URL+"/a1/policies", "application/json", strings.NewReader(policyBody))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	var created State
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if created.Policy.Version != 1 || created.Status != StatusNotApplied {
		t.Fatalf("created %+v", created)
	}

	// Duplicate create → 409.
	resp, _ = c.Post(srv.URL+"/a1/policies", "application/json", strings.NewReader(policyBody))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// List.
	resp, _ = c.Get(srv.URL + "/a1/policies")
	var list []State
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].Policy.ID != "p1" {
		t.Fatalf("list %+v", list)
	}

	// Get one.
	resp, _ = c.Get(srv.URL + "/a1/policies/p1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = c.Get(srv.URL + "/a1/policies/ghost")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get missing status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Update via PUT.
	up := strings.Replace(policyBody, `"minThroughputMbps":40`, `"minThroughputMbps":50`, 1)
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/a1/policies/p1", strings.NewReader(up))
	req.Header.Set("Content-Type", "application/json")
	resp, err = c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var updated State
	if err := json.NewDecoder(resp.Body).Decode(&updated); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if updated.Policy.Version != 2 || updated.Policy.Targets[0].MinThroughputMbps != 50 {
		t.Fatalf("updated %+v", updated)
	}

	// Mismatched body ID → 400.
	bad := strings.Replace(policyBody, `"id":"p1"`, `"id":"zz"`, 1)
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/a1/policies/p1", strings.NewReader(bad))
	req.Header.Set("Content-Type", "application/json")
	resp, _ = c.Do(req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched id status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Status summary reflects a transition.
	st.SetStatus("p1", StatusViolated, "slice 1 below floor")
	resp, _ = c.Get(srv.URL + "/a1/status")
	var sum StatusSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sum.Policies != 1 || sum.Violated != 1 {
		t.Fatalf("summary %+v", sum)
	}

	// Delete.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/a1/policies/p1", nil)
	resp, _ = c.Do(req)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp.Body.Close()
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/a1/policies/p1", nil)
	resp, _ = c.Do(req)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete missing status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPMethodAndContentEnforcement(t *testing.T) {
	_, srv := newTestServer(t)
	c := srv.Client()

	// Wrong method → 405 + Allow.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/a1/policies", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, POST" {
		t.Fatalf("Allow = %q", allow)
	}
	resp.Body.Close()

	req, _ = http.NewRequest(http.MethodPost, srv.URL+"/a1/status", nil)
	resp, _ = c.Do(req)
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET" {
		t.Fatalf("status route: %d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}
	resp.Body.Close()

	req, _ = http.NewRequest(http.MethodPost, srv.URL+"/a1/policies/p1", strings.NewReader(policyBody))
	req.Header.Set("Content-Type", "application/json")
	resp, _ = c.Do(req)
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, PUT, DELETE" {
		t.Fatalf("policy route: %d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}
	resp.Body.Close()

	// Wrong content type → 415.
	resp, _ = c.Post(srv.URL+"/a1/policies", "text/plain", strings.NewReader(policyBody))
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain create status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = c.Post(srv.URL+"/a1/policies", "", strings.NewReader(policyBody))
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("empty content-type status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Charset parameter is fine.
	resp, _ = c.Post(srv.URL+"/a1/policies", "application/json; charset=utf-8", strings.NewReader(policyBody))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("charset create status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Validation failure → 400 with the issue list.
	badPolicy := `{"id":"bad","typeId":"slice_sla_v1","agent":0,"windowMs":1,"targets":[]}`
	resp, _ = c.Post(srv.URL+"/a1/policies", "application/json", strings.NewReader(badPolicy))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid policy status %d", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(eb.Error, "windowMs") || !strings.Contains(eb.Error, "targets") {
		t.Fatalf("error body %q misses issues", eb.Error)
	}

	// Unknown path under /a1/ → 404.
	resp, _ = c.Get(srv.URL + "/a1/bogus")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPTypes(t *testing.T) {
	_, srv := newTestServer(t)
	resp, err := srv.Client().Get(srv.URL + "/a1/types")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var types []TypeSchema
	if err := json.NewDecoder(resp.Body).Decode(&types); err != nil {
		t.Fatal(err)
	}
	if len(types) != 1 || types[0].TypeID != TypeSliceSLA {
		t.Fatalf("types %+v", types)
	}
	// The embedded schema must itself be valid JSON.
	var schema map[string]any
	if err := json.Unmarshal(types[0].Schema, &schema); err != nil {
		t.Fatalf("schema not valid JSON: %v", err)
	}
}
