// Package a1 is the non-RT-RIC-style policy plane: typed, schema-
// validated A1 policy objects held in a versioned in-memory store with
// per-policy enforcement status. The obs server mounts the store's
// HTTP northbound (/a1/policies, /a1/policies/{id}, /a1/status) and
// streams store events on the control-room "a1" channel; the
// xapp.SLAXApp closed loop consumes the store and writes status
// transitions back (see docs/A1.md).
//
// The package stays dependency-light on purpose: it knows nothing of
// the E2 plane, the tsdb, or the slicing controller — it is the shared
// contract between the operator-facing northbound and whatever loop
// enforces the policies.
package a1

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Status is the enforcement state of one policy.
type Status string

// Policy status values, as reported on /a1/status and the a1 stream
// channel.
const (
	// StatusNotApplied: the policy exists but nothing enforces it yet —
	// no enforcement loop is running, the agent has no NVS slice
	// configuration, or the policy was just created/updated.
	StatusNotApplied Status = "NOT_APPLIED"
	// StatusEnforced: the last enforcement tick found every target met.
	StatusEnforced Status = "ENFORCED"
	// StatusViolated: a target was missed for enough consecutive ticks
	// to clear the hysteresis filter.
	StatusViolated Status = "VIOLATED"
)

// TypeSliceSLA is the policy type this SDK ships: per-slice SLA
// targets (minimum throughput, maximum latency) enforced by the SLA
// closed loop against NVS slice weights.
const TypeSliceSLA = "slice_sla_v1"

// SliceTarget is one slice's SLA targets inside a TypeSliceSLA policy.
// At least one of the two targets must be set.
type SliceTarget struct {
	SliceID uint32 `json:"sliceId"`
	// MinThroughputMbps is the slice's aggregate downlink throughput
	// floor (0 = no throughput target).
	MinThroughputMbps float64 `json:"minThroughputMbps,omitempty"`
	// MaxLatencyMS is the ceiling on the p95 RLC sojourn time of any UE
	// in the slice (0 = no latency target).
	MaxLatencyMS float64 `json:"maxLatencyMs,omitempty"`
}

// Policy is one typed A1 policy object.
type Policy struct {
	// ID names the policy ([A-Za-z0-9._-], at most 64 chars).
	ID string `json:"id"`
	// TypeID selects the policy schema; TypeSliceSLA is the only
	// registered type.
	TypeID string `json:"typeId"`
	// Agent is the E2 agent the policy applies to.
	Agent int `json:"agent"`
	// Priority orders policies within one agent (higher wins ties for
	// remedy resources; 0-100).
	Priority int `json:"priority,omitempty"`
	// WindowMS is the enforcement window: targets are evaluated over
	// the trailing WindowMS of tsdb samples (50-600000).
	WindowMS int64 `json:"windowMs"`
	// CooldownMS is the minimum gap between two remedies for this
	// policy (0 = the loop's default, twice the window).
	CooldownMS int64 `json:"cooldownMs,omitempty"`
	// Targets are the per-slice SLA targets (1-32, unique slice IDs).
	Targets []SliceTarget `json:"targets"`
	// Version is assigned by the store and bumped on every update;
	// client-supplied values are ignored.
	Version uint64 `json:"version,omitempty"`
}

// Schema limits, mirrored in the JSON schema served at /a1/types.
const (
	maxIDLen     = 64
	maxPriority  = 100
	minWindowMS  = 50
	maxWindowMS  = 600_000
	maxCooldown  = 3_600_000
	maxTargets   = 32
	maxTargetVal = 1e6
)

// ValidationError aggregates every schema violation found in one
// policy, each prefixed with its JSON field path.
type ValidationError struct {
	Issues []string
}

func (e *ValidationError) Error() string {
	return "invalid policy: " + strings.Join(e.Issues, "; ")
}

// Validate checks the policy against its type's schema. It returns nil
// or a *ValidationError listing every violation.
func (p *Policy) Validate() error {
	var issues []string
	bad := func(format string, args ...any) {
		issues = append(issues, fmt.Sprintf(format, args...))
	}
	if p.ID == "" {
		bad("id: required")
	} else if len(p.ID) > maxIDLen {
		bad("id: longer than %d chars", maxIDLen)
	} else if !validID(p.ID) {
		bad("id: must match [A-Za-z0-9._-]+")
	}
	if p.TypeID != TypeSliceSLA {
		bad("typeId: unknown type %q (want %q)", p.TypeID, TypeSliceSLA)
	}
	if p.Agent < 0 {
		bad("agent: must be >= 0")
	}
	if p.Priority < 0 || p.Priority > maxPriority {
		bad("priority: out of range [0,%d]", maxPriority)
	}
	if p.WindowMS < minWindowMS || p.WindowMS > maxWindowMS {
		bad("windowMs: out of range [%d,%d]", minWindowMS, maxWindowMS)
	}
	if p.CooldownMS < 0 || p.CooldownMS > maxCooldown {
		bad("cooldownMs: out of range [0,%d]", maxCooldown)
	}
	if len(p.Targets) == 0 {
		bad("targets: at least one required")
	} else if len(p.Targets) > maxTargets {
		bad("targets: more than %d", maxTargets)
	}
	seen := make(map[uint32]bool, len(p.Targets))
	for i, t := range p.Targets {
		path := fmt.Sprintf("targets[%d]", i)
		if seen[t.SliceID] {
			bad("%s.sliceId: duplicate slice %d", path, t.SliceID)
		}
		seen[t.SliceID] = true
		if !finiteNonNeg(t.MinThroughputMbps) || t.MinThroughputMbps > maxTargetVal {
			bad("%s.minThroughputMbps: out of range [0,%g]", path, maxTargetVal)
		}
		if !finiteNonNeg(t.MaxLatencyMS) || t.MaxLatencyMS > maxTargetVal {
			bad("%s.maxLatencyMs: out of range [0,%g]", path, maxTargetVal)
		}
		if t.MinThroughputMbps == 0 && t.MaxLatencyMS == 0 {
			bad("%s: at least one of minThroughputMbps/maxLatencyMs required", path)
		}
	}
	if issues != nil {
		return &ValidationError{Issues: issues}
	}
	return nil
}

func validID(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func finiteNonNeg(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// DecodePolicy reads one policy from JSON, rejecting unknown fields —
// a typo'd target name must fail loudly, not silently leave a policy
// without targets.
func DecodePolicy(r io.Reader) (*Policy, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Policy
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("bad policy JSON: %w", err)
	}
	// Reject trailing garbage after the object.
	if dec.More() {
		return nil, errors.New("bad policy JSON: trailing data after policy object")
	}
	return &p, nil
}

// TypeSchema describes one registered policy type for GET /a1/types.
type TypeSchema struct {
	TypeID      string          `json:"typeId"`
	Description string          `json:"description"`
	Schema      json.RawMessage `json:"schema"`
}

// Types returns the registered policy-type schemas. The schema is a
// JSON-Schema-shaped document describing the same constraints Validate
// enforces.
func Types() []TypeSchema {
	return []TypeSchema{{
		TypeID:      TypeSliceSLA,
		Description: "per-slice SLA targets (min throughput / max p95 latency) enforced against NVS slice weights",
		Schema:      json.RawMessage(sliceSLASchema),
	}}
}

// sliceSLASchema is the JSON schema for TypeSliceSLA, kept in lockstep
// with Policy.Validate.
const sliceSLASchema = `{
  "type": "object",
  "required": ["id", "typeId", "agent", "windowMs", "targets"],
  "additionalProperties": false,
  "properties": {
    "id":         {"type": "string", "pattern": "^[A-Za-z0-9._-]{1,64}$"},
    "typeId":     {"const": "slice_sla_v1"},
    "agent":      {"type": "integer", "minimum": 0},
    "priority":   {"type": "integer", "minimum": 0, "maximum": 100},
    "windowMs":   {"type": "integer", "minimum": 50, "maximum": 600000},
    "cooldownMs": {"type": "integer", "minimum": 0, "maximum": 3600000},
    "version":    {"type": "integer", "minimum": 0},
    "targets": {
      "type": "array", "minItems": 1, "maxItems": 32,
      "items": {
        "type": "object",
        "required": ["sliceId"],
        "additionalProperties": false,
        "properties": {
          "sliceId":           {"type": "integer", "minimum": 0},
          "minThroughputMbps": {"type": "number", "minimum": 0, "maximum": 1000000},
          "maxLatencyMs":      {"type": "number", "minimum": 0, "maximum": 1000000}
        },
        "anyOf": [
          {"properties": {"minThroughputMbps": {"exclusiveMinimum": 0}}, "required": ["minThroughputMbps"]},
          {"properties": {"maxLatencyMs": {"exclusiveMinimum": 0}}, "required": ["maxLatencyMs"]}
        ]
      }
    }
  }
}`
