package a1

// snapshot.go — policy-plane persistence: a point-in-time image of the
// store (every policy State plus the global version counter) that a
// restarted controller loads so intents, their versions, and their last
// enforcement verdicts survive the restart. Mirrors the tsdb snapshot
// idiom: magic + version byte, CRC-protected payload, atomic
// temp-file-and-rename saves, periodic background loop with a final
// write on stop.
//
// Format v1 (little-endian):
//
//	magic   "FXA1" (4 bytes)
//	version u8 = 1
//	payload — CRC-protected:
//	  u64 store version counter
//	  u32 policy count
//	  per policy: u32 length, then that many bytes of State JSON
//	footer  u32 CRC-32 (IEEE) of the payload bytes
//
// States are JSON rather than hand-packed binary: the store is
// low-cardinality (policies, not samples), and JSON keeps the snapshot
// forward-compatible with new Policy fields for free.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"
)

const (
	a1SnapshotMagic   = "FXA1"
	a1SnapshotVersion = 1

	// Pre-CRC sanity bounds, checked before allocating.
	maxSnapPolicies   = 1 << 20
	maxSnapStateBytes = 1 << 24
)

// ErrSnapshotFormat reports a malformed, truncated, or corrupt policy
// snapshot stream.
var ErrSnapshotFormat = errors.New("a1: bad snapshot")

// WriteSnapshot serializes the store to w in snapshot format v1 and
// returns the byte count written.
func (s *Store) WriteSnapshot(w io.Writer) (int64, error) {
	s.mu.RLock()
	version := s.version
	states := make([]State, 0, len(s.pols))
	for _, st := range s.pols {
		states = append(states, *st)
	}
	s.mu.RUnlock()

	if _, err := io.WriteString(w, a1SnapshotMagic); err != nil {
		return 0, err
	}
	if _, err := w.Write([]byte{a1SnapshotVersion}); err != nil {
		return 0, err
	}
	var crc uint32
	n := int64(len(a1SnapshotMagic) + 1)
	emit := func(p []byte) error {
		if _, err := w.Write(p); err != nil {
			return err
		}
		crc = crc32.Update(crc, crc32.IEEETable, p)
		n += int64(len(p))
		return nil
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:8], version)
	if err := emit(buf[:8]); err != nil {
		return n, err
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(states)))
	if err := emit(buf[:4]); err != nil {
		return n, err
	}
	for _, st := range states {
		b, err := json.Marshal(st)
		if err != nil {
			return n, err
		}
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(b)))
		if err := emit(buf[:4]); err != nil {
			return n, err
		}
		if err := emit(b); err != nil {
			return n, err
		}
	}
	binary.LittleEndian.PutUint32(buf[:4], crc)
	if _, err := w.Write(buf[:4]); err != nil {
		return n, err
	}
	return n + 4, nil
}

// ReadSnapshot restores a snapshot written by WriteSnapshot, replacing
// the store's contents wholesale. The version counter becomes the
// maximum of the current and snapshotted counters, so post-restore
// mutations can never reuse a version number handed out before the
// restart. No events fire: restore happens at startup, before any
// stream consumer attaches.
func (s *Store) ReadSnapshot(r io.Reader) error {
	head := make([]byte, len(a1SnapshotMagic)+1)
	if _, err := io.ReadFull(r, head); err != nil {
		return fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
	}
	if string(head[:4]) != a1SnapshotMagic {
		return fmt.Errorf("%w: bad magic %q", ErrSnapshotFormat, head[:4])
	}
	if head[4] != a1SnapshotVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrSnapshotFormat, head[4])
	}
	var crc uint32
	take := func(n int) ([]byte, error) {
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
		}
		crc = crc32.Update(crc, crc32.IEEETable, b)
		return b, nil
	}
	b, err := take(8)
	if err != nil {
		return err
	}
	version := binary.LittleEndian.Uint64(b)
	if b, err = take(4); err != nil {
		return err
	}
	count := binary.LittleEndian.Uint32(b)
	if count > maxSnapPolicies {
		return fmt.Errorf("%w: %d policies", ErrSnapshotFormat, count)
	}
	pols := make(map[string]*State, count)
	for i := uint32(0); i < count; i++ {
		if b, err = take(4); err != nil {
			return err
		}
		sz := binary.LittleEndian.Uint32(b)
		if sz > maxSnapStateBytes {
			return fmt.Errorf("%w: state of %d bytes", ErrSnapshotFormat, sz)
		}
		if b, err = take(int(sz)); err != nil {
			return err
		}
		var st State
		if err := json.Unmarshal(b, &st); err != nil {
			return fmt.Errorf("%w: state %d: %v", ErrSnapshotFormat, i, err)
		}
		if st.Policy.ID == "" {
			return fmt.Errorf("%w: state %d has no policy id", ErrSnapshotFormat, i)
		}
		cp := st
		pols[st.Policy.ID] = &cp
	}
	var foot [4]byte
	if _, err := io.ReadFull(r, foot[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
	}
	if got := binary.LittleEndian.Uint32(foot[:]); got != crc {
		return fmt.Errorf("%w: CRC mismatch", ErrSnapshotFormat)
	}

	s.mu.Lock()
	s.pols = pols
	if version > s.version {
		s.version = version
	}
	n := len(s.pols)
	s.mu.Unlock()
	storeTel.active.Set(int64(n))
	return nil
}

// SaveFile writes an atomic snapshot: a temp file in path's directory,
// synced, then renamed over path.
func (s *Store) SaveFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".a1-snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if _, err := s.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile restores a snapshot file written by SaveFile. A missing file
// is not an error (fresh start); a malformed one is.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return s.ReadSnapshot(f)
}

// SnapshotEvery runs a background loop writing SaveFile(path) every
// interval until stop is closed, then writes one final snapshot. It
// returns a done channel that closes after the final write. Errors are
// reported through onErr (nil ignores them).
func (s *Store) SnapshotEvery(path string, interval time.Duration, stop <-chan struct{}, onErr func(error)) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		var tick <-chan time.Time
		if interval > 0 {
			t := time.NewTicker(interval)
			defer t.Stop()
			tick = t.C
		}
		for {
			select {
			case <-tick:
				if err := s.SaveFile(path); err != nil && onErr != nil {
					onErr(err)
				}
			case <-stop:
				if err := s.SaveFile(path); err != nil && onErr != nil {
					onErr(err)
				}
				return
			}
		}
	}()
	return done
}
