package a1

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func validPolicy() Policy {
	return Policy{
		ID:       "sla-slice1",
		TypeID:   TypeSliceSLA,
		Agent:    0,
		Priority: 10,
		WindowMS: 400,
		Targets:  []SliceTarget{{SliceID: 1, MinThroughputMbps: 45}},
	}
}

func TestValidateOK(t *testing.T) {
	p := validPolicy()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Policy)
		want   string // substring of the issue list
	}{
		{"empty id", func(p *Policy) { p.ID = "" }, "id: required"},
		{"bad id chars", func(p *Policy) { p.ID = "has space" }, "must match"},
		{"long id", func(p *Policy) { p.ID = strings.Repeat("x", 65) }, "longer than"},
		{"unknown type", func(p *Policy) { p.TypeID = "nope_v9" }, "unknown type"},
		{"negative agent", func(p *Policy) { p.Agent = -1 }, "agent"},
		{"priority range", func(p *Policy) { p.Priority = 101 }, "priority"},
		{"window too small", func(p *Policy) { p.WindowMS = 10 }, "windowMs"},
		{"window too large", func(p *Policy) { p.WindowMS = 10_000_000 }, "windowMs"},
		{"negative cooldown", func(p *Policy) { p.CooldownMS = -1 }, "cooldownMs"},
		{"no targets", func(p *Policy) { p.Targets = nil }, "at least one required"},
		{"too many targets", func(p *Policy) {
			p.Targets = nil
			for i := 0; i < 33; i++ {
				p.Targets = append(p.Targets, SliceTarget{SliceID: uint32(i), MaxLatencyMS: 1})
			}
		}, "more than 32"},
		{"duplicate slice", func(p *Policy) {
			p.Targets = append(p.Targets, SliceTarget{SliceID: 1, MaxLatencyMS: 5})
		}, "duplicate slice"},
		{"empty target", func(p *Policy) {
			p.Targets = []SliceTarget{{SliceID: 2}}
		}, "at least one of"},
		{"nan throughput", func(p *Policy) {
			p.Targets = []SliceTarget{{SliceID: 1, MinThroughputMbps: math.NaN()}}
		}, "minThroughputMbps"},
		{"inf latency", func(p *Policy) {
			p.Targets = []SliceTarget{{SliceID: 1, MaxLatencyMS: math.Inf(1)}}
		}, "maxLatencyMs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := validPolicy()
			tc.mutate(&p)
			err := p.Validate()
			if err == nil {
				t.Fatalf("mutation %q accepted", tc.name)
			}
			var ve *ValidationError
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if ok := errorsAs(err, &ve); !ok {
				t.Fatalf("error is %T, want *ValidationError", err)
			}
		})
	}
}

// errorsAs avoids importing errors for one call in a test file.
func errorsAs(err error, target **ValidationError) bool {
	ve, ok := err.(*ValidationError)
	if ok {
		*target = ve
	}
	return ok
}

func TestValidateAggregatesIssues(t *testing.T) {
	p := Policy{TypeID: "bogus", WindowMS: 1}
	err := p.Validate()
	if err == nil {
		t.Fatal("invalid policy accepted")
	}
	ve := err.(*ValidationError)
	if len(ve.Issues) < 3 {
		t.Fatalf("want >=3 aggregated issues, got %d: %v", len(ve.Issues), ve.Issues)
	}
}

func TestDecodePolicyStrict(t *testing.T) {
	if _, err := DecodePolicy(strings.NewReader(
		`{"id":"p","typeId":"slice_sla_v1","agent":0,"windowMs":100,"targets":[{"sliceId":1,"minThroughputMbps":1}],"bogusField":true}`,
	)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := DecodePolicy(strings.NewReader(`{"id":"p"} trailing`)); err == nil {
		t.Fatal("trailing data accepted")
	}
	p, err := DecodePolicy(strings.NewReader(
		`{"id":"p","typeId":"slice_sla_v1","agent":2,"windowMs":100,"targets":[{"sliceId":1,"maxLatencyMs":50}]}`,
	))
	if err != nil {
		t.Fatal(err)
	}
	if p.Agent != 2 || len(p.Targets) != 1 || p.Targets[0].MaxLatencyMS != 50 {
		t.Fatalf("decoded %+v", p)
	}
}

func TestStoreCRUDAndVersions(t *testing.T) {
	s := NewStore()
	st, err := s.Create(validPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if st.Policy.Version != 1 || st.Status != StatusNotApplied {
		t.Fatalf("created state %+v", st)
	}
	if _, err := s.Create(validPolicy()); err != ErrExists {
		t.Fatalf("duplicate create: %v", err)
	}
	p2 := validPolicy()
	p2.ID = "other"
	if st2, err := s.Create(p2); err != nil || st2.Policy.Version != 2 {
		t.Fatalf("second create: %v %+v", err, st2)
	}
	up := validPolicy()
	up.Priority = 99
	st, err = s.Update("sla-slice1", up)
	if err != nil {
		t.Fatal(err)
	}
	if st.Policy.Version != 3 || st.Policy.Priority != 99 {
		t.Fatalf("updated state %+v", st)
	}
	if _, err := s.Update("ghost", up); err != ErrNotFound {
		t.Fatalf("update missing: %v", err)
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d", got)
	}
	if list := s.List(); len(list) != 2 || list[0].Policy.ID != "other" {
		t.Fatalf("List order: %+v", list)
	}
	if _, ok := s.Delete("other"); !ok {
		t.Fatal("delete failed")
	}
	if _, ok := s.Delete("other"); ok {
		t.Fatal("double delete succeeded")
	}
}

func TestStoreStatusTransitions(t *testing.T) {
	s := NewStore()
	if _, err := s.Create(validPolicy()); err != nil {
		t.Fatal(err)
	}
	st, changed, ok := s.SetStatus("sla-slice1", StatusEnforced, "targets met")
	if !ok || !changed || st.Transitions != 1 {
		t.Fatalf("first transition: changed=%v %+v", changed, st)
	}
	// Same status again: reason refresh only, no transition.
	st, changed, ok = s.SetStatus("sla-slice1", StatusEnforced, "still met")
	if !ok || changed || st.Transitions != 1 || st.Reason != "still met" {
		t.Fatalf("refresh: changed=%v %+v", changed, st)
	}
	st, changed, _ = s.SetStatus("sla-slice1", StatusViolated, "slice 1 below target")
	if !changed || st.Transitions != 2 || st.Status != StatusViolated {
		t.Fatalf("violation transition: %+v", st)
	}
	if _, _, ok := s.SetStatus("ghost", StatusEnforced, ""); ok {
		t.Fatal("SetStatus on missing policy reported ok")
	}
	sum := s.Summary()
	if sum.Policies != 1 || sum.Violated != 1 || sum.Enforced != 0 {
		t.Fatalf("summary %+v", sum)
	}
}

func TestStoreActiveForOrdering(t *testing.T) {
	s := NewStore()
	for i, pr := range []int{5, 20, 20, 1} {
		p := validPolicy()
		p.ID = fmt.Sprintf("p%d", i)
		p.Priority = pr
		p.Agent = 7
		if _, err := s.Create(p); err != nil {
			t.Fatal(err)
		}
	}
	other := validPolicy()
	other.ID = "elsewhere"
	other.Agent = 9
	if _, err := s.Create(other); err != nil {
		t.Fatal(err)
	}
	got := s.ActiveFor(7)
	if len(got) != 4 {
		t.Fatalf("ActiveFor(7) = %d policies", len(got))
	}
	wantOrder := []string{"p1", "p2", "p0", "p3"} // priority desc, ID ties asc
	for i, w := range wantOrder {
		if got[i].Policy.ID != w {
			t.Fatalf("order[%d] = %s, want %s (full: %+v)", i, got[i].Policy.ID, w, got)
		}
	}
	if agents := s.Agents(); len(agents) != 2 || agents[0] != 7 || agents[1] != 9 {
		t.Fatalf("Agents() = %v", agents)
	}
}

func TestStoreHookEvents(t *testing.T) {
	s := NewStore()
	var mu sync.Mutex
	var evs []Event
	s.SetHook(func(e Event) {
		mu.Lock()
		evs = append(evs, e)
		mu.Unlock()
	})
	if _, err := s.Create(validPolicy()); err != nil {
		t.Fatal(err)
	}
	s.SetStatus("sla-slice1", StatusViolated, "below target")
	s.SetStatus("sla-slice1", StatusViolated, "still below") // no event
	if _, err := s.Update("sla-slice1", validPolicy()); err != nil {
		t.Fatal(err)
	}
	s.Delete("sla-slice1")
	mu.Lock()
	defer mu.Unlock()
	want := []EventType{EventCreated, EventStatus, EventUpdated, EventDeleted}
	if len(evs) != len(want) {
		t.Fatalf("events = %d, want %d (%+v)", len(evs), len(want), evs)
	}
	for i, w := range want {
		if evs[i].Type != w {
			t.Fatalf("event[%d] = %s, want %s", i, evs[i].Type, w)
		}
		if evs[i].TS == 0 || evs[i].State.Policy.ID != "sla-slice1" {
			t.Fatalf("event[%d] incomplete: %+v", i, evs[i])
		}
	}
}

func TestStoreConcurrency(t *testing.T) {
	s := NewStore()
	s.SetHook(func(Event) {})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := validPolicy()
				p.ID = fmt.Sprintf("g%d-i%d", g, i%10)
				p.Agent = g
				if _, err := s.Create(p); err != nil {
					s.SetStatus(p.ID, StatusEnforced, "met")
					s.Update(p.ID, p)
				}
				s.List()
				s.ActiveFor(g)
				s.Summary()
				if i%7 == 0 {
					s.Delete(p.ID)
				}
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkA1PolicyValidate(b *testing.B) {
	p := validPolicy()
	p.Targets = append(p.Targets,
		SliceTarget{SliceID: 2, MaxLatencyMS: 20},
		SliceTarget{SliceID: 3, MinThroughputMbps: 10, MaxLatencyMS: 30})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA1StoreSetStatus(b *testing.B) {
	s := NewStore()
	if _, err := s.Create(validPolicy()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate so every other call is a real transition.
		if i%2 == 0 {
			s.SetStatus("sla-slice1", StatusEnforced, "met")
		} else {
			s.SetStatus("sla-slice1", StatusViolated, "missed")
		}
	}
}
