package a1

import (
	"encoding/json"
	"errors"
	"mime"
	"net/http"
	"strings"
	"time"

	"flexric/internal/telemetry"
)

// HTTP northbound of the policy store, mounted under /a1/ on the obs
// server (obs.WithA1):
//
//	GET    /a1/policies       → []State, sorted by ID
//	POST   /a1/policies       → create (201 + stored State)
//	GET    /a1/policies/{id}  → one State
//	PUT    /a1/policies/{id}  → update (200 + stored State)
//	DELETE /a1/policies/{id}  → 204
//	GET    /a1/status         → StatusSummary
//	GET    /a1/types          → registered policy-type schemas
//
// Bodies must be application/json (415 otherwise); wrong methods get
// 405 with an Allow header; validation failures get 400 with every
// schema violation listed. Each route counts a1.http.requests.<route>
// and observes a1.http.latency.<route>, mirroring the obs mux.

// Handler serves the /a1/* routes over a store.
type Handler struct {
	store *Store
}

// NewHandler returns the /a1/* handler for a store.
func NewHandler(st *Store) *Handler { return &Handler{store: st} }

var httpTel = struct {
	policies, policy, status, types *routeTel
}{
	policies: newRouteTel("a1_policies"),
	policy:   newRouteTel("a1_policy"),
	status:   newRouteTel("a1_status"),
	types:    newRouteTel("a1_types"),
}

type routeTel struct {
	reqs *telemetry.Counter
	lat  *telemetry.Histogram
}

func newRouteTel(label string) *routeTel {
	return &routeTel{
		reqs: telemetry.NewCounter("a1.http.requests." + label),
		lat:  telemetry.NewHistogram("a1.http.latency." + label),
	}
}

func (t *routeTel) observe(start time.Time) {
	t.reqs.Inc()
	t.lat.Observe(time.Since(start))
}

// ServeHTTP dispatches /a1/* requests.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	switch {
	case r.URL.Path == "/a1/policies":
		defer httpTel.policies.observe(start)
		h.handlePolicies(w, r)
	case strings.HasPrefix(r.URL.Path, "/a1/policies/"):
		defer httpTel.policy.observe(start)
		h.handlePolicy(w, r, strings.TrimPrefix(r.URL.Path, "/a1/policies/"))
	case r.URL.Path == "/a1/status":
		defer httpTel.status.observe(start)
		h.handleStatus(w, r)
	case r.URL.Path == "/a1/types":
		defer httpTel.types.observe(start)
		h.handleTypes(w, r)
	default:
		http.NotFound(w, r)
	}
}

// requireJSON enforces an application/json request body; it writes the
// 415 and returns false otherwise.
func requireJSON(w http.ResponseWriter, r *http.Request) bool {
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil || mt != "application/json" {
		http.Error(w, "unsupported content type (want application/json)",
			http.StatusUnsupportedMediaType)
		return false
	}
	return true
}

func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the JSON error envelope for 4xx responses with detail.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func (h *Handler) handlePolicies(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, h.store.List())
	case http.MethodPost:
		if !requireJSON(w, r) {
			return
		}
		p, err := DecodePolicy(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		st, err := h.store.Create(*p)
		switch {
		case errors.Is(err, ErrExists):
			writeError(w, http.StatusConflict, err)
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
		default:
			writeJSON(w, http.StatusCreated, st)
		}
	default:
		methodNotAllowed(w, "GET, POST")
	}
}

func (h *Handler) handlePolicy(w http.ResponseWriter, r *http.Request, id string) {
	switch r.Method {
	case http.MethodGet:
		st, ok := h.store.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case http.MethodPut:
		if !requireJSON(w, r) {
			return
		}
		p, err := DecodePolicy(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if p.ID != "" && p.ID != id {
			writeError(w, http.StatusBadRequest,
				errors.New("policy id in body does not match URL"))
			return
		}
		st, err := h.store.Update(id, *p)
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err)
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
		default:
			writeJSON(w, http.StatusOK, st)
		}
	case http.MethodDelete:
		if _, ok := h.store.Delete(id); !ok {
			writeError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		methodNotAllowed(w, "GET, PUT, DELETE")
	}
}

func (h *Handler) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, h.store.Summary())
}

func (h *Handler) handleTypes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, Types())
}
