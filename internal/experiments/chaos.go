package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"flexric/internal/agent"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/faultinject"
	"flexric/internal/ran"
	"flexric/internal/resilience"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/telemetry"
)

// Chaos is the resilience subsystem's acceptance experiment (`make
// chaos-demo`): a monitoring control loop runs over a fault-injected
// transport — scripted connection drops on the agent side, a listener
// blackout on the controller side — and must survive without losing a
// subscription. The agent's reconnect supervisor redials with backoff
// and re-runs E2 setup; the server re-admits the node under its old
// AgentID and replays the monitor's subscription; the indication stream
// resumes with nobody above the SDK noticing.

// ChaosOptions parameterizes one chaos run.
type ChaosOptions struct {
	E2Scheme e2ap.Scheme
	SMScheme sm.Scheme
	// ConnPlan scripts faults on the agent's controller connections
	// (default "drop@120,drop@120": two cuts, each after 120 frames).
	ConnPlan string
	// ListenerPlan scripts faults on the controller's listener (default
	// "blackout@1=2": after the first accept, reject two redials).
	ListenerPlan string
	// Timeout bounds each phase (default 30s).
	Timeout time.Duration
}

// ChaosResult reports what the scripted faults did and how the system
// recovered.
type ChaosResult struct {
	Scheme          string
	Drops           uint64 // connection drops fired by the plan
	BlackoutRejects uint64 // redials rejected by the listener blackout
	Reconnects      uint64 // re-admissions observed by the server
	SubsReplayed    uint64 // subscriptions re-established by the server
	IndsBefore      uint64 // monitor indications before the first fault
	IndsAfter       uint64 // monitor indications after recovery
	SubsBefore      int64  // active subscriptions before the first fault
	SubsAfter       int64  // active subscriptions after recovery
}

// String renders the result as a table.
func (r *ChaosResult) String() string {
	return Table(
		[]string{"scheme", "drops", "blackouts", "reconnects", "replayed", "inds before", "inds after", "subs before", "subs after"},
		[][]string{{
			r.Scheme,
			fmt.Sprint(r.Drops),
			fmt.Sprint(r.BlackoutRejects),
			fmt.Sprint(r.Reconnects),
			fmt.Sprint(r.SubsReplayed),
			fmt.Sprint(r.IndsBefore),
			fmt.Sprint(r.IndsAfter),
			fmt.Sprint(r.SubsBefore),
			fmt.Sprint(r.SubsAfter),
		}},
	)
}

func activeSubs() int64 {
	if !telemetry.Enabled {
		return 0
	}
	if n := telemetry.TakeSnapshot().Child("server"); n != nil {
		return n.Gauges["subscriptions_active"]
	}
	return 0
}

// Chaos runs the scripted fault timeline against a live monitoring loop
// and returns the recovery evidence. Requires the default build: with
// -tags nofaultinject the plans are inert and the phases time out.
func Chaos(opts ChaosOptions) (*ChaosResult, error) {
	if opts.ConnPlan == "" {
		opts.ConnPlan = "drop@120,drop@120"
	}
	if opts.ListenerPlan == "" {
		opts.ListenerPlan = "blackout@1=2"
	}
	if opts.Timeout == 0 {
		opts.Timeout = 30 * time.Second
	}
	connPlan, err := faultinject.Parse(opts.ConnPlan)
	if err != nil {
		return nil, err
	}
	lisPlan, err := faultinject.Parse(opts.ListenerPlan)
	if err != nil {
		return nil, err
	}

	resCfg := &resilience.Config{
		Backoff: resilience.BackoffPolicy{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond},
	}
	srv := server.New(server.Config{
		Scheme:       opts.E2Scheme,
		Resilience:   resCfg,
		WrapListener: lisPlan.WrapListener,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	var reconnects atomic.Uint64
	srv.OnAgentReconnect(func(server.AgentInfo) { reconnects.Add(1) })
	mon := ctrl.NewMonitor(srv, ctrl.MonitorConfig{
		Scheme: opts.SMScheme, PeriodMS: 1, Layers: ctrl.MonMAC, Decode: true,
	})

	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT4G, NumRB: 25})
	if err != nil {
		return nil, err
	}
	a := agent.New(agent.Config{
		NodeID:     e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: 1},
		Scheme:     opts.E2Scheme,
		Resilience: resCfg,
		WrapConn:   connPlan.WrapConn,
	})
	fns := []agent.RANFunction{sm.NewMACStats(cell, opts.SMScheme, a)}
	for _, fn := range fns {
		if err := a.RegisterFunction(fn); err != nil {
			return nil, err
		}
	}
	if _, err := a.Connect(addr); err != nil {
		return nil, err
	}
	defer a.Close()
	if _, err := cell.Attach(1, "", "208.95", 20); err != nil {
		return nil, err
	}

	replayed0 := telemetry.TakeSnapshot().Counter("server.subs_replayed")

	// drive advances the simulated base station (the indication source)
	// while polling cond; the supervisor and the server react in real
	// time underneath.
	drive := func(what string, cond func() bool) error {
		deadline := time.Now().Add(opts.Timeout)
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("chaos: timeout waiting for %s", what)
			}
			for i := 0; i < 20; i++ {
				cell.Step(1)
				sm.TickAll(fns, cell.Now())
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}

	res := &ChaosResult{Scheme: string(opts.E2Scheme)}

	// Phase 1: healthy baseline — the monitor's subscription is live and
	// indications flow.
	if err := drive("baseline indications", func() bool {
		n, _ := mon.Counters()
		return n >= 50
	}); err != nil {
		return nil, err
	}
	res.IndsBefore, _ = mon.Counters()
	res.SubsBefore = activeSubs()

	// Phase 2: the scripted faults — every drop directive fires, every
	// cut ends in a re-admission (redials rejected by the blackout are
	// absorbed by the supervisor's backoff in between).
	want := uint64(len(connPlan.Drops))
	if err := drive("drops and reconnects", func() bool {
		return connPlan.DropsFired() >= want && reconnects.Load() >= want
	}); err != nil {
		return nil, err
	}

	// Phase 3: recovery — the indication stream is flowing again on the
	// replayed subscription.
	base, _ := mon.Counters()
	if err := drive("indication stream resumption", func() bool {
		n, _ := mon.Counters()
		return n >= base+50
	}); err != nil {
		return nil, err
	}

	res.IndsAfter, _ = mon.Counters()
	res.Drops = connPlan.DropsFired()
	res.BlackoutRejects = lisPlan.BlackoutRejects()
	res.Reconnects = reconnects.Load()
	res.SubsReplayed = telemetry.TakeSnapshot().Counter("server.subs_replayed") - replayed0
	res.SubsAfter = activeSubs()
	return res, nil
}
