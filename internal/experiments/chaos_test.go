//go:build !nofaultinject

package experiments

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"flexric/internal/e2ap"
	"flexric/internal/obs"
	"flexric/internal/sm"
	"flexric/internal/telemetry"
)

// TestChaosDemo is the resilience subsystem's acceptance demo (`make
// chaos-demo`): a monitoring loop survives a scripted fault plan — two
// connection drops plus a listener blackout rejecting the first two
// redials — under both codecs. The agent reconnects with backoff, the
// server replays the subscription, the indication stream resumes, and
// no subscription is permanently lost. The reconnect counts surface on
// the observability endpoint (/snapshot.json).
func TestChaosDemo(t *testing.T) {
	schemes := []struct {
		e2 e2ap.Scheme
		sm sm.Scheme
	}{
		{e2ap.SchemeASN, sm.SchemeASN},
		{e2ap.SchemeFB, sm.SchemeFB},
	}
	for _, sc := range schemes {
		t.Run(string(sc.e2), func(t *testing.T) {
			res, err := Chaos(ChaosOptions{E2Scheme: sc.e2, SMScheme: sc.sm})
			if err != nil {
				t.Fatal(err)
			}
			if res.Drops != 2 {
				t.Errorf("drops fired = %d, want 2", res.Drops)
			}
			if res.BlackoutRejects != 2 {
				t.Errorf("blackout rejects = %d, want 2", res.BlackoutRejects)
			}
			if res.Reconnects < 2 {
				t.Errorf("reconnects = %d, want >= 2", res.Reconnects)
			}
			if res.IndsAfter <= res.IndsBefore {
				t.Errorf("indication stream did not resume: %d -> %d", res.IndsBefore, res.IndsAfter)
			}
			if telemetry.Enabled {
				if res.SubsReplayed < 2 {
					t.Errorf("subscriptions replayed = %d, want >= 2 (one per reconnect)", res.SubsReplayed)
				}
				if res.SubsAfter != res.SubsBefore {
					t.Errorf("subscriptions lost: %d before, %d after", res.SubsBefore, res.SubsAfter)
				}
			}
			t.Log("\n" + res.String())
		})
	}

	if !telemetry.Enabled {
		return
	}
	// The recovery is observable from the outside: reconnect counters
	// appear in the HTTP snapshot.
	o, err := obs.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	resp, err := http.Get("http://" + o.Addr() + "/snapshot.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Children map[string]struct {
			Counters map[string]uint64 `json:"counters"`
		} `json:"children"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/snapshot.json not JSON: %v\n%s", err, body)
	}
	if n := doc.Children["agent"].Counters["reconnects"]; n == 0 {
		t.Errorf("agent.reconnects missing from /snapshot.json:\n%s", body)
	}
	if n := doc.Children["server"].Counters["agent_reconnects"]; n == 0 {
		t.Errorf("server.agent_reconnects missing from /snapshot.json:\n%s", body)
	}
}
