package experiments

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/obs"
	"flexric/internal/sm"
	"flexric/internal/tsdb"
)

// TSDBLoadResult is the query-load dataset: windowed /tsdb/query reads
// racing live indication ingest on one store.
type TSDBLoadResult struct {
	Agents   int
	UEs      int
	Readers  int
	Compress bool
	Duration time.Duration

	Series      int    // distinct series after the run
	Indications uint64 // reports ingested during the run
	Queries     uint64 // HTTP queries answered 200
	Misses      uint64 // 404s (window raced retention / series not yet born)
	Errors      uint64 // transport or non-2xx/404 responses
	QPS         float64
	Latency     RTTStats // per-query HTTP round trip

	// Compressed-store occupancy after the run (Compress only).
	Chunks         int
	BytesPerSample float64
}

// TSDBLoad measures the time-series store under combined load: dummy
// agents stream MAC reports at 1 ms into a monitor that appends every
// UE field to the store, while `readers` concurrent HTTP clients issue
// windowed queries against the observability /tsdb endpoints for d.
// With compress, the store runs in chunk-compression mode (smaller
// write head so seals actually happen at experiment timescales) and the
// result reports the chunk count and compressed bytes/sample. This is
// the flexric-bench `tsdbload` subcommand.
func TSDBLoad(agents, readers int, d time.Duration, compress bool) (*TSDBLoadResult, error) {
	const ues = 8
	res := &TSDBLoadResult{Agents: agents, UEs: ues, Readers: readers, Compress: compress, Duration: d}

	cfg := tsdb.Config{Capacity: 2048}
	if compress {
		cfg = tsdb.Config{Capacity: 256, Compress: true}
	}
	store := tsdb.New(cfg)
	srv, addr, err := StartServer(e2ap.SchemeFB)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	mon := ctrl.NewMonitor(srv, ctrl.MonitorConfig{
		Scheme: sm.SchemeFB, PeriodMS: 1, Layers: ctrl.MonMAC, Decode: true, TSDB: store,
	})
	o, err := obs.NewServer("127.0.0.1:0", obs.WithTSDB(store))
	if err != nil {
		return nil, err
	}
	defer o.Close()

	var dummies []*DummyAgent
	defer func() {
		for _, da := range dummies {
			da.Close()
		}
	}()
	for i := 0; i < agents; i++ {
		da, err := StartDummyAgent(uint64(i+1), addr, e2ap.SchemeFB, sm.SchemeFB, ues, time.Millisecond)
		if err != nil {
			return nil, err
		}
		dummies = append(dummies, da)
	}
	if !WaitUntil(waitShort, func() bool {
		n, _ := mon.Counters()
		return n > uint64(agents*10) && store.NumSeries() > 0
	}) {
		return nil, fmt.Errorf("indications not reaching the store")
	}
	indBase, _ := mon.Counters()
	// Query by the server-assigned agent IDs (0-based), not node IDs.
	var ids []int
	for _, ai := range srv.Agents() {
		ids = append(ids, int(ai.ID))
	}

	// Rotate query shapes so every endpoint mode is exercised: raw
	// last-K, trailing-window aggregate, and bucketed range.
	shapes := []string{
		"last=16",
		"window_ms=500",
		"window_ms=1000&step_ms=100",
	}
	fields := []string{"cqi", "mcs", "tx_bits", "throughput_bps"}
	base := "http://" + o.Addr()
	var hits, misses, errs uint64
	lat := make([][]time.Duration, readers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cl := &http.Client{Timeout: 5 * time.Second}
			for i := r; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Walk agents, UEs, fields, and shapes on coprime-ish
				// strides so readers don't hammer one series in lockstep.
				url := fmt.Sprintf("%s/tsdb/query?agent=%d&fn=mac&ue=%d&field=%s&%s",
					base, ids[i%len(ids)], i%ues+1, fields[i%len(fields)], shapes[i%len(shapes)])
				t0 := time.Now()
				resp, err := cl.Get(url)
				if err != nil {
					atomic.AddUint64(&errs, 1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					atomic.AddUint64(&hits, 1)
					lat[r] = append(lat[r], time.Since(t0))
				case resp.StatusCode == http.StatusNotFound:
					atomic.AddUint64(&misses, 1)
				default:
					atomic.AddUint64(&errs, 1)
				}
			}
		}(r)
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()

	indNow, _ := mon.Counters()
	res.Indications = indNow - indBase
	res.Series = store.NumSeries()
	res.Queries = atomic.LoadUint64(&hits)
	res.Misses = atomic.LoadUint64(&misses)
	res.Errors = atomic.LoadUint64(&errs)
	res.QPS = float64(res.Queries) / d.Seconds()
	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	res.Latency = summarize(all)
	if compress {
		st := store.Stats()
		res.Chunks = st.Chunks
		res.BytesPerSample = st.BytesPerSample
	}
	if res.Queries == 0 {
		return nil, fmt.Errorf("no query succeeded (misses=%d errors=%d)", res.Misses, res.Errors)
	}
	return res, nil
}

// String renders the query-load table.
func (r *TSDBLoadResult) String() string {
	rows := [][]string{{
		fmt.Sprintf("%d", r.Agents),
		fmt.Sprintf("%d", r.Readers),
		fmt.Sprintf("%d", r.Series),
		fmt.Sprintf("%d", r.Indications),
		fmt.Sprintf("%.0f", r.QPS),
		fmt.Sprintf("%d", r.Latency.Mean.Microseconds()),
		fmt.Sprintf("%d", r.Latency.P50.Microseconds()),
		fmt.Sprintf("%d", r.Latency.P95.Microseconds()),
		fmt.Sprintf("%d", r.Misses),
		fmt.Sprintf("%d", r.Errors),
	}}
	mode := ""
	if r.Compress {
		mode = " (compressed)"
	}
	out := fmt.Sprintf("tsdbload — windowed queries vs live ingest%s, %d agents x %d UEs @1ms, %v\n",
		mode, r.Agents, r.UEs, r.Duration) +
		Table([]string{"agents", "readers", "series", "ingested", "qps",
			"mean µs", "p50 µs", "p95 µs", "404s", "errs"}, rows)
	if r.Compress {
		out += fmt.Sprintf("store: %d sealed chunks, %.2f bytes/sample compressed (16 raw)\n",
			r.Chunks, r.BytesPerSample)
	}
	return out
}
