//go:build !race

package experiments

// raceTimeScale is 1 in ordinary builds; see race.go.
const raceTimeScale = 1
