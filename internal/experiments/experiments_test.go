package experiments

import (
	"flexric/internal/ran"
	"strings"
	"testing"
	"time"
)

// These tests run reduced-scale versions of every experiment and assert
// the paper's qualitative shapes (who wins, rough factors). Paper-scale
// runs go through cmd/flexric-bench.

func TestFig6aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Fig6a(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.BaselineCPU <= 0 {
			t.Fatalf("%s: baseline CPU %.3f", r.Label, r.BaselineCPU)
		}
		// The agent is a bounded, small absolute cost (a few % of a
		// core). The paper's "agent ≪ user plane" relation holds against
		// OAI's real PHY; our simulated user plane is far cheaper than
		// OAI, so the meaningful check here is the absolute bound (see
		// EXPERIMENTS.md).
		if r.AgentCPU > 10 {
			t.Fatalf("%s: agent CPU %.2f%% of a core per sim-second", r.Label, r.AgentCPU)
		}
	}
	// FlexRIC and FlexRAN agents are in the same cost class (paper:
	// "FlexRIC incurs comparable overhead as FlexRAN"). FlexRIC ships 3
	// SM indications per period vs FlexRAN's single bundled report, so
	// allow a wide band (see EXPERIMENTS.md note 5).
	ricCPU, ranCPU := res.Rows[0].AgentCPU, res.Rows[1].AgentCPU
	if ricCPU > 8*ranCPU+3 || ranCPU > 8*ricCPU+3 {
		t.Errorf("agent costs diverge: FlexRIC %.2f vs FlexRAN %.2f", ricCPU, ranCPU)
	}
	// The 5G cell's user plane is more demanding than 4G (the paper's
	// "relative overhead decreases when deploying FlexRIC over NR").
	if res.Rows[2].BaselineCPU <= res.Rows[0].BaselineCPU {
		t.Fatalf("NR baseline %.2f <= LTE baseline %.2f",
			res.Rows[2].BaselineCPU, res.Rows[0].BaselineCPU)
	}
	t.Log("\n" + res.String())
}

func TestFig6bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Fig6b([]int{4, 32}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.FlexRIC < p.NoAgent || p.FlexRAN < p.NoAgent {
			// CPU accounting noise can make tiny overheads dip below
			// baseline, but not by much.
			if p.NoAgent-p.FlexRIC > 0.5*p.NoAgent {
				t.Fatalf("UE=%d: FlexRIC (%.2f) below baseline (%.2f)", p.UEs, p.FlexRIC, p.NoAgent)
			}
		}
	}
	// Work grows with UEs for all variants.
	if res.Points[1].NoAgent <= res.Points[0].NoAgent {
		t.Fatalf("baseline not increasing with UEs: %+v", res.Points)
	}
	t.Log("\n" + res.String())
}

func TestFig7aShape(t *testing.T) {
	res, err := Fig7a(30, []int{100, 1500})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]RTTStats{}
	for _, r := range res.Rows {
		byKey[r.Combo+"/"+itoa(r.Payload)] = r.RTT
	}
	// 5 systems × 2 payloads.
	if len(res.Rows) != 10 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	// FB/FB must not be clearly slower than ASN/ASN at 1500 B (paper:
	// ~66 % lower with asn1c; our PER codec is so cheap that socket and
	// scheduler noise dominate loopback RTTs, so we compare min-RTT with
	// a generous margin rather than medians).
	if fb, asn := byKey["FB/FB/1500"], byKey["ASN/ASN/1500"]; fb.Min > asn.Min*13/10+20*time.Microsecond {
		t.Errorf("FB/FB min %v clearly above ASN/ASN min %v at 1500B", fb.Min, asn.Min)
	}
	// All RTTs are sane loopback values.
	for k, s := range byKey {
		if s.Min <= 0 || s.Min > 50*time.Millisecond {
			t.Fatalf("%s: implausible RTT %v", k, s.Min)
		}
	}
	t.Log("\n" + res.String())
}

func itoa(n int) string {
	if n == 100 {
		return "100"
	}
	return "1500"
}

func TestFig7bShape(t *testing.T) {
	res, err := Fig7b(nil)
	if err != nil {
		t.Fatal(err)
	}
	get := func(combo string, payload int) float64 {
		for _, r := range res.Rows {
			if r.Combo == combo && r.Payload == payload {
				return r.Mbps
			}
		}
		t.Fatalf("missing %s/%d", combo, payload)
		return 0
	}
	asn100, fb100 := get("ASN/ASN", 100), get("FB/FB", 100)
	// Paper: FB/FB ≈ +67 % signaling at 100 B.
	if ratio := fb100 / asn100; ratio < 1.2 || ratio > 2.5 {
		t.Errorf("FB/FB / ASN/ASN at 100B = %.2f, want ~1.67", ratio)
	}
	asn1500, fb1500 := get("ASN/ASN", 1500), get("FB/FB", 1500)
	// Paper: almost negligible at 1500 B.
	if ratio := fb1500 / asn1500; ratio > 1.15 {
		t.Errorf("FB/FB / ASN/ASN at 1500B = %.2f, want ~1.06", ratio)
	}
	// FlexRAN (single encoding) has the smallest rate.
	if fr := get("FlexRAN", 100); fr >= asn100 {
		t.Errorf("FlexRAN %.2f >= ASN/ASN %.2f at 100B", fr, asn100)
	}
	// The ASN/FB combination must not beat ASN/ASN (the paper calls it
	// "useless").
	if mixed := get("ASN/FB", 100); mixed < asn100 {
		t.Errorf("ASN/FB %.2f < ASN/ASN %.2f: mixed combo should not win", mixed, asn100)
	}
	t.Log("\n" + res.String())
}

func TestFig8aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Fig8a(4, 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// FlexRIC must use (much) less CPU than FlexRAN; the paper reports
	// 10x, we accept any clear win.
	if res.FlexRICCPU >= res.FlexRANCPU {
		t.Errorf("FlexRIC CPU %.2f >= FlexRAN %.2f", res.FlexRICCPU, res.FlexRANCPU)
	}
	// And less controller state (paper: 124 vs 375 MB with history).
	if res.FlexRICMem >= res.FlexRANMem {
		t.Errorf("FlexRIC mem %.1f >= FlexRAN %.1f", res.FlexRICMem, res.FlexRANMem)
	}
	t.Log("\n" + res.String())
}

func TestFig8bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Fig8b([]int{2, 6}, 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// ASN costs more CPU than FB at equal load. The paper reports ~4x
	// with asn1c; our from-scratch PER codec is much faster, so the
	// end-to-end gap compresses into wall-clock measurement noise when
	// the machine is loaded (documented in EXPERIMENTS.md). We therefore
	// assert only that FB is never *clearly worse*; the deterministic
	// per-message mechanism is asserted in
	// BenchmarkAblationDispatchDecode (~10x).
	var asnSum, fbSum float64
	for i := range res.ASN {
		asnSum += res.ASN[i].CPU
		fbSum += res.FB[i].CPU
		if res.FB[i].CPU > res.ASN[i].CPU*1.25+1 {
			t.Errorf("agents=%d: FB %.2f clearly above ASN %.2f", res.FB[i].Agents, res.FB[i].CPU, res.ASN[i].CPU)
		}
	}
	if fbSum > asnSum*1.15+1 {
		t.Errorf("FB total CPU %.2f clearly above ASN total %.2f", fbSum, asnSum)
	}
	// CPU grows with agent count (wide margin for load noise).
	if res.ASN[1].CPU <= res.ASN[0].CPU*0.8 {
		t.Errorf("ASN CPU not increasing: %+v", res.ASN)
	}
	t.Log("\n" + res.String())
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(nil)
	if err != nil {
		t.Fatal(err)
	}
	var flexricMB, oranMB float64
	for _, r := range res.Rows {
		if strings.Contains(r.Component, "O-RAN RIC platform") {
			oranMB = r.SizeMB
		}
		if strings.Contains(r.Component, "flexric") {
			flexricMB = r.SizeMB
		}
	}
	if oranMB != 2469 {
		t.Fatalf("O-RAN platform %v MB", oranMB)
	}
	if flexricMB <= 0 || flexricMB > 200 {
		t.Fatalf("flexric artifact %v MB", flexricMB)
	}
	if oranMB/flexricMB < 10 {
		t.Fatalf("size ratio %.1f, expect >10x", oranMB/flexricMB)
	}
	t.Log("\n" + res.String())
}

func TestFig9aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Fig9a(30, []int{100, 1500})
	if err != nil {
		t.Fatal(err)
	}
	get := func(sys string, payload int) RTTStats {
		for _, r := range res.Rows {
			if r.System == sys && r.Payload == payload {
				return r.RTT
			}
		}
		t.Fatalf("missing %s/%d", sys, payload)
		return RTTStats{}
	}
	// O-RAN must be slower than FlexRIC FB/FB at both payloads (paper:
	// ≥3x at 100B, ≥2x at 1500B). Min-RTT is the noise-robust signal:
	// the O-RAN pipeline's calibrated processing tax is deterministic
	// compute that survives scheduler jitter, while percentile
	// comparisons flake when the suite saturates the machine.
	for _, payload := range []int{100, 1500} {
		oran, fb := get("O-RAN", payload), get("FB/FB", payload)
		if oran.Min <= fb.Min {
			t.Errorf("payload %d: O-RAN min %v <= FB/FB min %v", payload, oran.Min, fb.Min)
		}
	}
	t.Log("\n" + res.String())
}

func TestFig9bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Fig9b(4, 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlexRICCPU >= res.ORANCPU {
		t.Errorf("FlexRIC CPU %.2f >= O-RAN %.2f", res.FlexRICCPU, res.ORANCPU)
	}
	if res.FlexRICMem >= res.ORANMem {
		t.Errorf("FlexRIC mem %.1f >= O-RAN %.1f", res.FlexRICMem, res.ORANMem)
	}
	if res.E2TDecodes == 0 || res.XAppDecodes == 0 {
		t.Error("double-decode counters empty")
	}
	t.Log("\n" + res.String())
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Fig11(30000)
	if err != nil {
		t.Fatal(err)
	}
	// Transparent: bufferbloat pushes VoIP RTT into hundreds of ms.
	if m := res.Transparent.RTTPercentile(95); m < 200 {
		t.Errorf("transparent p95 RTT %d ms, expected bufferbloat", m)
	}
	// xApp mode: the remedy was applied and the tail is protected.
	if res.XApp.RemedyAtMS == 0 {
		t.Error("xApp never applied its remedy")
	}
	if m := res.XApp.RTTPercentile(95); m >= res.Transparent.RTTPercentile(95) {
		t.Errorf("xApp p95 %d >= transparent p95 %d", m, res.Transparent.RTTPercentile(95))
	}
	// The CDF comparison of Fig. 11c: clear improvement at the median
	// for post-remedy traffic, ~4x overall in the paper.
	if imp := float64(res.Transparent.RTTPercentile(50)) / float64(res.XApp.RTTPercentile(50)+1); imp < 1.5 {
		t.Errorf("median improvement %.1fx, want >1.5x", imp)
	}
	t.Log("\n" + res.String())
}

func TestFig13aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Fig13a(4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 4 {
		t.Fatalf("phases: %d", len(res.Phases))
	}
	t1, t2, t3, t4 := res.Phases[0], res.Phases[1], res.Phases[2], res.Phases[3]
	// t1: equal shares between 2 UEs.
	if rel(t1.PerUE[1], t1.PerUE[2]) > 0.15 {
		t.Errorf("t1 shares unequal: %+v", t1.PerUE)
	}
	// t2: white UE drops below half the cell.
	if t2.PerUE[1] > 0.45*t2.Total {
		t.Errorf("t2 white UE still has %.1f of %.1f", t2.PerUE[1], t2.Total)
	}
	// t3: white UE back at ~50 %.
	if rel(t3.PerUE[1], 0.5*t3.Total) > 0.12 {
		t.Errorf("t3 white UE %.1f, want ~%.1f", t3.PerUE[1], 0.5*t3.Total)
	}
	// t4: ~66 %.
	if rel(t4.PerUE[1], 0.66*t4.Total) > 0.12 {
		t.Errorf("t4 white UE %.1f, want ~%.1f", t4.PerUE[1], 0.66*t4.Total)
	}
	t.Log("\n" + res.String())
}

func rel(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

func TestFig13bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Fig13b(9000)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the first third (slice 2 idle): static caps gray at ~66 %,
	// sharing gives it ~100 %.
	gray := func(pts []Fig13bPoint) float64 {
		n := len(pts) / 3
		if n == 0 {
			n = 1
		}
		sum := 0.0
		for _, p := range pts[1:n] { // skip the settling first sample
			sum += p.Gray
		}
		return sum / float64(n-1)
	}
	gStatic, gShare := gray(res.Static), gray(res.Sharing)
	if gShare <= gStatic*1.2 {
		t.Errorf("sharing gray %.1f vs static %.1f: expected ~1.5x gain", gShare, gStatic)
	}
	t.Log("\n" + res.String())
}

func TestFig15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Fig15(24000)
	if err != nil {
		t.Fatal(err)
	}
	window := func(s *Fig15Series, fromFrac, toFrac float64, ue int) float64 {
		lo := int(fromFrac * float64(len(s.Points)))
		hi := int(toFrac * float64(len(s.Points)))
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, p := range s.Points[lo:hi] {
			sum += p.UE[ue]
		}
		return sum / float64(hi-lo)
	}
	// Isolation: after A's reconfig (middle window before B pauses), B's
	// UEs are unaffected in the shared case — each still ~25 % of cell.
	cell50 := float64(ran.CellCapacityBits(50, 28)) * 1000 / 1e6
	b3 := window(res.Shared, 0.25, 0.45, 2)
	if rel(b3, cell50/4) > 0.25 {
		t.Errorf("shared: B's UE3 at %.1f Mbps, want ~%.1f (isolation)", b3, cell50/4)
	}
	// Multiplexing gain: when B is fully idle (final stretch, after B's
	// RLC backlog drains), A's UEs in the shared case take (almost) the
	// whole cell; dedicated A is still capped at its own 25 RB eNB.
	aShared := window(res.Shared, 0.93, 1.0, 0) + window(res.Shared, 0.93, 1.0, 1)
	aDed := window(res.Dedicated, 0.93, 1.0, 0) + window(res.Dedicated, 0.93, 1.0, 1)
	if aShared < 1.5*aDed {
		t.Errorf("multiplexing gain %.1f/%.1f = %.2fx, want ≥1.5x", aShared, aDed, aShared/aDed)
	}
	t.Log("\n" + res.String())
}
