package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"time"

	"flexric/internal/e2ap"
	"flexric/internal/federation"
	"flexric/internal/sm"
	"flexric/internal/tsdb"
)

// FedLoad is the federation scaling sweep (`flexric-bench fedload`): the
// same monitored fleet is driven once against a single controller and
// once against a federated plane of K shards plus a root, at increasing
// fleet sizes. Reported per configuration: ingest throughput
// (indications/s summed over the controllers), agents per controller,
// and the latency of the fleet-wide windowed aggregate — the single
// controller answers from its own store, the root fans out to every
// shard's /tsdb/partial and merges. The point of the comparison: the
// ingest path scales with shard count while the federated query stays
// within the same order as the local one.

// FedLoadOptions parameterizes the sweep.
type FedLoadOptions struct {
	E2Scheme e2ap.Scheme
	SMScheme sm.Scheme
	// Shards is the federated plane's size (default 3).
	Shards int
	// Agents are the fleet sizes to sweep (default 4, 8).
	Agents []int
	// Duration is the ingest window per configuration (default 300ms).
	Duration time.Duration
}

// FedLoadRow is one (mode, fleet size) measurement.
type FedLoadRow struct {
	Mode          string  `json:"mode"` // "single" or "federated"
	Shards        int     `json:"shards"`
	Agents        int     `json:"agents"`
	AgentsPerCtrl float64 `json:"agents_per_ctrl"`
	IndsPerS      float64 `json:"inds_per_s"`
	QueryMS       float64 `json:"query_ms"`
	Count         int     `json:"count"` // samples under the queried window
}

// FedLoadResult is the sweep output.
type FedLoadResult struct {
	Scheme string       `json:"scheme"`
	Rows   []FedLoadRow `json:"rows"`
}

// String renders the result as a table.
func (r *FedLoadResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Mode,
			fmt.Sprint(row.Shards),
			fmt.Sprint(row.Agents),
			fmt.Sprintf("%.1f", row.AgentsPerCtrl),
			fmt.Sprintf("%.0f", row.IndsPerS),
			fmt.Sprintf("%.2f", row.QueryMS),
			fmt.Sprint(row.Count),
		})
	}
	return Table(
		[]string{"mode", "ctrls", "agents", "agents/ctrl", "inds/s", "query ms", "count"},
		rows,
	)
}

// FedLoad runs the sweep.
func FedLoad(opts FedLoadOptions) (*FedLoadResult, error) {
	if opts.Shards == 0 {
		opts.Shards = 3
	}
	if len(opts.Agents) == 0 {
		opts.Agents = []int{4, 8}
	}
	if opts.Duration == 0 {
		opts.Duration = 300 * time.Millisecond
	}
	res := &FedLoadResult{Scheme: string(opts.E2Scheme)}
	for _, n := range opts.Agents {
		for _, shards := range []int{1, opts.Shards} {
			row, err := fedLoadOne(opts, shards, n)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, *row)
		}
	}
	return res, nil
}

func fedLoadOne(opts FedLoadOptions, nShards, nAgents int) (*FedLoadRow, error) {
	snapDir, err := os.MkdirTemp("", "fedload-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(snapDir)

	members := make([]string, nShards)
	for i := range members {
		members[i] = fmt.Sprintf("s%d", i)
	}
	ring := federation.NewRing(federation.DefaultReplicas, members...)
	shards := make(map[string]*federation.Shard, nShards)
	defer func() {
		for _, sh := range shards {
			sh.Close()
		}
	}()
	for i, name := range members {
		sh, err := federation.NewShard(federation.ShardConfig{
			Name: name, Index: i,
			E2Scheme: opts.E2Scheme, SMScheme: opts.SMScheme,
			SouthAddr: "127.0.0.1:0", ObsAddr: "127.0.0.1:0",
			SnapshotDir: snapDir,
			Resilience:  fedRes(),
			PeriodMS:    2,
		})
		if err != nil {
			return nil, err
		}
		shards[name] = sh
	}
	federated := nShards > 1
	var root *federation.Root
	if federated {
		root, err = federation.NewRoot(federation.RootConfig{
			Ring: ring, E2Scheme: opts.E2Scheme,
			ListenAddr: "127.0.0.1:0",
			Resilience: fedRes(), CoordPeriodMS: 20,
		})
		if err != nil {
			return nil, err
		}
		defer root.Close()
		for _, sh := range shards {
			if err := sh.ConnectRoot(root.Addr()); err != nil {
				return nil, err
			}
		}
	}

	addrs := make(map[string]string, nShards)
	for name, sh := range shards {
		addrs[name] = sh.SouthAddr()
	}
	var fleet []*fedBS
	defer func() {
		for _, b := range fleet {
			b.a.Close()
		}
	}()
	for id := uint64(1); id <= uint64(nAgents); id++ {
		b, err := newFedBS(id, opts.E2Scheme, opts.SMScheme, federation.NewPlacer(ring, addrs, id))
		if err != nil {
			return nil, err
		}
		fleet = append(fleet, b)
	}

	// Ingest window: drive the fleet for the configured wall duration.
	indsAt := func() uint64 {
		var n uint64
		for _, sh := range shards {
			i, _ := sh.Monitor().Counters()
			n += i
		}
		return n
	}
	if !WaitUntil(10*time.Second, func() bool {
		for i := 0; i < 5; i++ {
			for _, b := range fleet {
				b.step()
			}
		}
		return indsAt() > 0
	}) {
		return nil, fmt.Errorf("fedload: no ingest")
	}
	start := time.Now()
	inds0 := indsAt()
	for time.Since(start) < opts.Duration {
		for i := 0; i < 10; i++ {
			for _, b := range fleet {
				b.step()
			}
		}
	}
	elapsed := time.Since(start)
	ingested := indsAt() - inds0

	row := &FedLoadRow{
		Shards:        nShards,
		Agents:        nAgents,
		AgentsPerCtrl: float64(nAgents) / float64(nShards),
		IndsPerS:      float64(ingested) / elapsed.Seconds(),
	}
	to := time.Now().UnixNano()
	const queryReps = 5
	if federated {
		row.Mode = "federated"
		q0 := time.Now()
		for i := 0; i < queryReps; i++ {
			agg, ok, err := root.FederatedAggregate("all", "mac", "all", "throughput_bps", 0, to)
			if err != nil || !ok {
				return nil, fmt.Errorf("fedload: federated query: ok=%v err=%v", ok, err)
			}
			row.Count = agg.Count
		}
		row.QueryMS = float64(time.Since(q0).Microseconds()) / 1000 / queryReps
	} else {
		row.Mode = "single"
		sh := shards[members[0]]
		q0 := time.Now()
		for i := 0; i < queryReps; i++ {
			agg, err := partialQuery(sh.ObsAddr(), to)
			if err != nil {
				return nil, fmt.Errorf("fedload: single query: %w", err)
			}
			row.Count = agg.Count
		}
		row.QueryMS = float64(time.Since(q0).Microseconds()) / 1000 / queryReps
	}
	return row, nil
}

// partialQuery issues the same /tsdb/partial request the root's fan-out
// uses, against one shard, and finishes the partial locally.
func partialQuery(obsAddr string, to int64) (tsdb.Agg, error) {
	params := url.Values{}
	params.Set("agent", "all")
	params.Set("fn", "mac")
	params.Set("ue", "all")
	params.Set("field", "throughput_bps")
	params.Set("from", "0")
	params.Set("to", fmt.Sprint(to))
	resp, err := http.Get("http://" + obsAddr + "/tsdb/partial?" + params.Encode())
	if err != nil {
		return tsdb.Agg{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return tsdb.Agg{}, fmt.Errorf("status %s", resp.Status)
	}
	var env struct {
		Agg tsdb.PartialAgg `json:"agg"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return tsdb.Agg{}, err
	}
	agg, ok := env.Agg.Finish()
	if !ok {
		return tsdb.Agg{}, fmt.Errorf("empty aggregate")
	}
	return agg, nil
}
