package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"flexric/internal/a1"
	"flexric/internal/agent"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/faultinject"
	"flexric/internal/obs"
	"flexric/internal/obs/ws"
	"flexric/internal/ran"
	"flexric/internal/resilience"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/telemetry"
	"flexric/internal/tsdb"
	"flexric/internal/xapp"
)

// SLALoad is the A1 policy plane's acceptance experiment (`make
// sla-demo`): the full closed loop — policy northbound, tsdb windows,
// SLA xApp, NVS weight remedies — driven through a violation and back,
// with the verdicts observed on the control-room a1 stream channel and
// the transport disrupted by a scripted reconnect storm along the way.
//
// Timeline on a 106 RB NR cell with two NVS slices (0.3 / 0.7, sharing
// on) and a slice-1 throughput SLA at 45 % of cell capacity:
//
//  1. baseline — slice 2 idle, work conservation lets slice 1 borrow
//     the surplus: target met, policy ENFORCED
//  2. load surge — slice 2 saturates, slice 1 falls back to its 0.3
//     reservation: below target, policy VIOLATED, the xApp shifts
//     capacity toward slice 1 until the target holds again (ENFORCED)
//  3. slice churn — the surge UE is re-associated across slices a few
//     times; the loop keeps the verdict stable
//  4. reconnect storm — scripted connection drops cut the agent; the
//     resilience layer re-admits it and the loop keeps enforcing

// SLALoadOptions parameterizes one run.
type SLALoadOptions struct {
	E2Scheme e2ap.Scheme
	SMScheme sm.Scheme
	// ConnPlan scripts the reconnect storm on the agent's connections
	// (default "drop@1500,drop@1500,drop@1500").
	ConnPlan string
	// Timeout bounds each phase (default 30s).
	Timeout time.Duration
}

// SLALoadResult is the closed-loop evidence.
type SLALoadResult struct {
	Scheme       string
	TargetMbps   float64 // SLA floor for slice 1
	BaselineMbps float64 // slice 1 while slice 2 is idle (borrowing)
	SurgeMbps    float64 // slice 1 under surge, before the remedy
	RemediedMbps float64 // slice 1 after the loop's weight shift
	Share0       float64 // slice 1 capacity share before remedies
	Share1       float64 // slice 1 capacity share after remedies
	Remedies     uint64  // a1.enforce.remedies fired
	Transitions  uint64  // status transitions on the policy
	StreamEvents int     // a1 events seen by the WebSocket observer
	SawViolated  bool    // VIOLATED observed on the stream channel
	SawEnforced  bool    // ENFORCED observed on the stream channel
	Drops        uint64  // reconnect-storm drops fired
	Reconnects   uint64  // re-admissions observed by the server
	FinalStatus  string
}

// String renders the result table.
func (r *SLALoadResult) String() string {
	return fmt.Sprintf("slaload — A1 closed loop, slice-1 SLA %.0f Mbps, scheme %s\n", r.TargetMbps, r.Scheme) +
		Table(
			[]string{"baseline", "surge", "remedied", "share before", "share after",
				"remedies", "transitions", "a1 events", "drops", "reconnects", "final"},
			[][]string{{
				fmt.Sprintf("%.1f", r.BaselineMbps),
				fmt.Sprintf("%.1f", r.SurgeMbps),
				fmt.Sprintf("%.1f", r.RemediedMbps),
				fmt.Sprintf("%.2f", r.Share0),
				fmt.Sprintf("%.2f", r.Share1),
				fmt.Sprint(r.Remedies),
				fmt.Sprint(r.Transitions),
				fmt.Sprint(r.StreamEvents),
				fmt.Sprint(r.Drops),
				fmt.Sprint(r.Reconnects),
				r.FinalStatus,
			}},
		)
}

// a1Observer is the headless control-room client: it subscribes to the
// a1 stream channel and records every live event it sees.
type a1Observer struct {
	conn *ws.Conn
	mu   sync.Mutex
	evs  []struct{ Type, Status string }
	done chan struct{}
}

func newA1Observer(addr string) (*a1Observer, error) {
	conn, err := ws.Dial("ws://"+addr+"/stream/ws", 5*time.Second)
	if err != nil {
		return nil, err
	}
	if err := conn.WriteText([]byte(`{"op":"subscribe","ch":"a1","flush_ms":20}`)); err != nil {
		conn.Close()
		return nil, err
	}
	o := &a1Observer{conn: conn, done: make(chan struct{})}
	go func() {
		defer close(o.done)
		for {
			_, payload, err := conn.ReadMessage()
			if err != nil {
				return
			}
			var frame struct {
				Ch       string `json:"ch"`
				Backfill bool   `json:"backfill"`
				Events   []struct {
					Type   string `json:"type"`
					Status string `json:"status"`
				} `json:"events"`
			}
			if json.Unmarshal(payload, &frame) != nil || frame.Ch != "a1" || frame.Backfill {
				continue
			}
			o.mu.Lock()
			for _, e := range frame.Events {
				o.evs = append(o.evs, struct{ Type, Status string }{e.Type, e.Status})
			}
			o.mu.Unlock()
		}
	}()
	return o, nil
}

func (o *a1Observer) close() {
	_ = o.conn.CloseHandshake(ws.CloseNormal, "done", 2*time.Second)
	o.conn.Close()
	<-o.done
}

func (o *a1Observer) stats() (n int, sawViolated, sawEnforced bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, e := range o.evs {
		if e.Type == "status" {
			switch e.Status {
			case string(a1.StatusViolated):
				sawViolated = true
			case string(a1.StatusEnforced):
				sawEnforced = true
			}
		}
	}
	return len(o.evs), sawViolated, sawEnforced
}

// SLALoad runs the closed-loop timeline and returns the evidence.
// Requires the default build: with -tags nofaultinject the reconnect
// storm is inert and the final phase times out.
func SLALoad(opts SLALoadOptions) (*SLALoadResult, error) {
	if opts.ConnPlan == "" {
		opts.ConnPlan = "drop@1500,drop@1500,drop@1500"
	}
	if opts.Timeout == 0 {
		opts.Timeout = 30 * time.Second
	}
	connPlan, err := faultinject.Parse(opts.ConnPlan)
	if err != nil {
		return nil, err
	}

	const numRB, mcs = 106, 20
	capMbps := float64(ran.CellCapacityBits(numRB, mcs)) * 1000 / 1e6
	targetMbps := 0.45 * capMbps
	res := &SLALoadResult{Scheme: string(opts.E2Scheme), TargetMbps: targetMbps}

	// Controller side: E2 server with resilience, a monitor feeding the
	// shared store, the slicing northbound, the policy store, and the
	// obs server with both the control room and the A1 northbound.
	resCfg := &resilience.Config{
		Backoff: resilience.BackoffPolicy{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond},
	}
	srv := server.New(server.Config{Scheme: opts.E2Scheme, Resilience: resCfg})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	var reconnects atomic.Uint64
	srv.OnAgentReconnect(func(server.AgentInfo) { reconnects.Add(1) })

	store := tsdb.New(tsdb.Config{Capacity: 4096})
	mon := ctrl.NewMonitor(srv, ctrl.MonitorConfig{
		Scheme: opts.SMScheme, PeriodMS: 1, Layers: ctrl.MonMAC, Decode: true, TSDB: store,
	})
	sc, err := ctrl.NewSlicingController(srv, opts.SMScheme, "127.0.0.1:0", ctrl.WithTSDB(store))
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	pols := a1.NewStore()
	topo := ctrl.NewTopology(srv, ctrl.TopoWithMonitor(mon), ctrl.TopoWithSlicing(sc), ctrl.TopoWithA1(pols))
	o, err := obs.NewServer("127.0.0.1:0",
		obs.WithTSDB(store), obs.WithStream(20), obs.WithA1(pols),
		obs.WithTopology(func() any { return topo.Snapshot() }))
	if err != nil {
		return nil, err
	}
	defer o.Close()
	watcher, err := newA1Observer(o.Addr())
	if err != nil {
		return nil, err
	}
	defer watcher.close()

	// RAN side: one NR cell whose agent dials through the scripted
	// connection faults; mac + slice SMs, two UEs.
	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT5G, NumRB: numRB})
	if err != nil {
		return nil, err
	}
	a := agent.New(agent.Config{
		NodeID:     e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeGNB, NodeID: 1},
		Scheme:     opts.E2Scheme,
		Resilience: resCfg,
		WrapConn:   connPlan.WrapConn,
	})
	fns := []agent.RANFunction{
		sm.NewMACStats(cell, opts.SMScheme, a),
		sm.NewSliceCtrl(cell, opts.SMScheme),
	}
	for _, fn := range fns {
		if err := a.RegisterFunction(fn); err != nil {
			return nil, err
		}
	}
	if _, err := a.Connect(addr); err != nil {
		return nil, err
	}
	defer a.Close()
	if _, err := cell.Attach(1, "", "208.95", mcs); err != nil {
		return nil, err
	}
	if err := Saturate(cell, 1); err != nil {
		return nil, err
	}
	if _, err := cell.Attach(2, "", "208.95", mcs); err != nil {
		return nil, err
	}
	if !WaitUntil(waitShort, func() bool { return len(srv.Agents()) == 1 }) {
		return nil, fmt.Errorf("slaload: agent connect")
	}

	// Slice layout: 0.3 / 0.7 with sharing on; UE 1 carries the SLA.
	sx := xapp.NewSliceXApp("http://"+sc.Addr(), 0)
	if err := sx.Deploy(ctrl.SliceConfigJSON{
		Algo: "nvs",
		Slices: []ctrl.SliceParamJSON{
			{ID: 1, Kind: "capacity", Capacity: 0.3, UESched: "pf"},
			{ID: 2, Kind: "capacity", Capacity: 0.7, UESched: "pf"},
		},
	}); err != nil {
		return nil, err
	}
	if err := sx.Associate(1, 1); err != nil {
		return nil, err
	}
	if err := sx.Associate(2, 2); err != nil {
		return nil, err
	}

	// Install the SLA through the A1 northbound, exactly as an operator
	// would: POST the typed policy to the obs server.
	pol := a1.Policy{
		ID: "sla-slice1", TypeID: a1.TypeSliceSLA, Agent: 0, Priority: 10,
		WindowMS: 400,
		Targets:  []a1.SliceTarget{{SliceID: 1, MinThroughputMbps: targetMbps}},
	}
	body, _ := json.Marshal(&pol)
	resp, err := http.Post("http://"+o.Addr()+"/a1/policies", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, fmt.Errorf("slaload: policy create: %s", resp.Status)
	}

	// The enforcement loop, driven deterministically: StepShare 0.2 so
	// one remedy lifts slice 1 from 0.3 to 0.5 of capacity (> the 0.45
	// target).
	x := xapp.NewSLAXApp(xapp.SLAConfig{
		Policies: pols, TSDB: store, SlicingBase: "http://" + sc.Addr(),
		HysteresisTicks: 2, StepShare: 0.2,
	})

	var lastMu sync.Mutex
	var last []xapp.PolicyDecision
	slice1 := func() (mbps float64, status a1.Status) {
		lastMu.Lock()
		defer lastMu.Unlock()
		for _, d := range last {
			if d.PolicyID != pol.ID {
				continue
			}
			status = d.Status
			for _, ev := range d.Slices {
				if ev.SliceID == 1 {
					mbps = ev.ThroughputMbps
				}
			}
		}
		return
	}

	// drive advances the simulated cell (~20 sim ms per wall ms) and
	// runs one enforcement tick per wall millisecond while polling cond.
	drive := func(what string, cond func() bool) error {
		deadline := time.Now().Add(opts.Timeout)
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("slaload: timeout waiting for %s", what)
			}
			for i := 0; i < 20; i++ {
				cell.Step(1)
				sm.TickAll(fns, cell.Now())
			}
			ds := x.EnforceOnce()
			lastMu.Lock()
			last = ds
			lastMu.Unlock()
			time.Sleep(time.Millisecond)
		}
		return nil
	}
	status := func() a1.Status {
		st, ok := pols.Get(pol.ID)
		if !ok {
			return ""
		}
		return st.Status
	}
	share1 := func() float64 {
		for _, st := range sc.Status() {
			for _, s := range st.Slices {
				if s.ID == 1 {
					return float64(s.CapacityQ) / 1e6
				}
			}
		}
		return 0
	}

	remedies0 := telemetry.TakeSnapshot().Counter("a1.enforce.remedies")

	// Phase 1: baseline — slice 2 idle, slice 1 borrows, target met.
	if err := drive("baseline ENFORCED", func() bool {
		mbps, _ := slice1()
		return status() == a1.StatusEnforced && mbps > targetMbps
	}); err != nil {
		return nil, err
	}
	res.BaselineMbps, _ = slice1()
	res.Share0 = share1()

	// Phase 2: load surge — slice 2 saturates, slice 1 drops to its
	// reservation and the SLA breaks.
	if err := Saturate(cell, 2); err != nil {
		return nil, err
	}
	if err := drive("surge VIOLATED", func() bool {
		return status() == a1.StatusViolated
	}); err != nil {
		return nil, err
	}
	res.SurgeMbps, _ = slice1()

	// ... and the loop remedies it: capacity shifts to slice 1 until the
	// target holds again.
	if err := drive("remedied ENFORCED", func() bool {
		mbps, _ := slice1()
		return status() == a1.StatusEnforced && mbps > targetMbps && share1() > 0.31
	}); err != nil {
		return nil, err
	}
	res.RemediedMbps, _ = slice1()
	res.Share1 = share1()

	// Phase 3: slice churn — bounce the surge UE across slices; the
	// verdict must settle back to ENFORCED every time.
	for i := 0; i < 3; i++ {
		if err := sx.Associate(2, 1); err != nil {
			return nil, err
		}
		if err := drive("churn tick", func() bool { return status() != "" }); err != nil {
			return nil, err
		}
		if err := sx.Associate(2, 2); err != nil {
			return nil, err
		}
	}
	if err := drive("post-churn ENFORCED", func() bool {
		return status() == a1.StatusEnforced
	}); err != nil {
		return nil, err
	}

	// Phase 4: reconnect storm — every scripted drop fires, every cut
	// ends in a re-admission, and the loop is still enforcing after.
	want := uint64(len(connPlan.Drops))
	if err := drive("reconnect storm", func() bool {
		return connPlan.DropsFired() >= want && reconnects.Load() >= want
	}); err != nil {
		return nil, err
	}
	if err := drive("post-storm ENFORCED", func() bool {
		mbps, _ := slice1()
		return status() == a1.StatusEnforced && mbps > targetMbps
	}); err != nil {
		return nil, err
	}

	st, _ := pols.Get(pol.ID)
	res.FinalStatus = string(st.Status)
	res.Transitions = st.Transitions
	res.Remedies = telemetry.TakeSnapshot().Counter("a1.enforce.remedies") - remedies0
	res.Drops = connPlan.DropsFired()
	res.Reconnects = reconnects.Load()

	// Give the hub one flush tick to deliver the tail before reading the
	// observer.
	time.Sleep(100 * time.Millisecond)
	res.StreamEvents, res.SawViolated, res.SawEnforced = watcher.stats()
	return res, nil
}
