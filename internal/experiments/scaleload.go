package experiments

import (
	"fmt"
	"time"

	"flexric/internal/agent"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/metrics"
	"flexric/internal/ran"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/transport"
	"flexric/internal/tsdb"
)

// ScaleLoadOptions configures the scale-out experiment.
type ScaleLoadOptions struct {
	// Cells is the number of base stations (one agent each).
	Cells int
	// UEsPerCell UEs attach to every cell.
	UEsPerCell int
	// IdlePct of each cell's UEs carry only sparse CBR traffic and park
	// between packets; the rest run saturating flows.
	IdlePct int
	// Shards is the UE shard count per cell.
	Shards int
	// PeriodMS is the MAC report period.
	PeriodMS uint32
	// IngestWorkers sizes the monitor's ingest pipeline pool (0 =
	// decode inline on the receive goroutines).
	IngestWorkers int
	// Duration is the wall-clock measurement window.
	Duration time.Duration
}

func (o *ScaleLoadOptions) defaults() {
	if o.Cells <= 0 {
		o.Cells = 32
	}
	if o.UEsPerCell <= 0 {
		o.UEsPerCell = 500
	}
	if o.IdlePct <= 0 {
		o.IdlePct = 95
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.PeriodMS == 0 {
		o.PeriodMS = 100
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
}

// ScaleLoadResult is the end-to-end scale-out dataset: a fleet of
// sharded cells simulated in lockstep, each with an E2 agent streaming
// per-shard MAC reports over the in-process pipe transport into the
// monitor's per-(agent, function) ingest pipelines and time-series
// store.
type ScaleLoadResult struct {
	Cells, UEsPerCell, IdlePct, Shards, Workers int
	PeriodMS                                    uint32
	Duration                                    time.Duration

	Slots       int     // TTIs simulated in the window
	UESlotsPS   float64 // UE-slots simulated per second
	IndPS       float64 // indications ingested per second
	MBInPS      float64 // report payload MB ingested per second
	P99SlotMS   float64 // p99 wall-clock slot-loop latency
	HeapKBPerUE float64 // live-heap cost per attached UE
	Series      int     // tsdb series materialized from the reports
}

// ScaleLoad runs the scale-out pipeline end to end. This is the
// flexric-bench `scaleload` subcommand and the end-to-end half of the
// bench scale tier (the ran-level core numbers come from the
// BenchmarkScale* benchmarks).
func ScaleLoad(opts ScaleLoadOptions) (*ScaleLoadResult, error) {
	opts.defaults()
	res := &ScaleLoadResult{
		Cells: opts.Cells, UEsPerCell: opts.UEsPerCell, IdlePct: opts.IdlePct,
		Shards: opts.Shards, Workers: opts.IngestWorkers,
		PeriodMS: opts.PeriodMS, Duration: opts.Duration,
	}
	totalUE := opts.Cells * opts.UEsPerCell

	store := tsdb.New(tsdb.Config{Capacity: 128})
	srv := server.New(server.Config{Scheme: e2ap.SchemeFB, Transport: transport.KindPipe})
	if _, err := srv.Start("scaleload"); err != nil {
		return nil, err
	}
	mon := ctrl.NewMonitor(srv, ctrl.MonitorConfig{
		Scheme: sm.SchemeFB, PeriodMS: opts.PeriodMS, Layers: ctrl.MonMAC,
		Decode: true, TSDB: store, IngestWorkers: opts.IngestWorkers,
	})
	defer mon.Close() // after srv.Close below (defers run LIFO)
	defer srv.Close()

	heapBase := metrics.HeapInUse()
	cells := make([]*ran.Cell, opts.Cells)
	fns := make([][]agent.RANFunction, opts.Cells)
	agents := make([]*agent.Agent, 0, opts.Cells)
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	for ci := range cells {
		cell, err := ran.NewCellWithOptions(ran.PHYConfig{RAT: ran.RAT4G, NumRB: 25, Band: 7},
			ran.CellOptions{Shards: opts.Shards})
		if err != nil {
			return nil, err
		}
		for i := 0; i < opts.UEsPerCell; i++ {
			u, err := cell.Attach(uint16(i+1), "", "208.95", 20)
			if err != nil {
				return nil, err
			}
			flow := ran.FiveTuple{DstIP: uint32(i + 1), DstPort: 5001, Proto: ran.ProtoUDP}
			if i*100 < opts.UEsPerCell*(100-opts.IdlePct) {
				u.AddSource(&ran.Saturating{Flow: flow, PktSize: 1500, RateBytesPerMS: 3000})
			} else {
				u.AddSource(&ran.CBR{Flow: flow, Size: 172, IntervalMS: 200, StartMS: int64(i % 200)})
			}
		}
		a := agent.New(agent.Config{
			NodeID: e2ap.GlobalE2NodeID{
				PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: uint64(ci + 1),
			},
			Scheme:    e2ap.SchemeFB,
			Transport: transport.KindPipe,
		})
		mac := sm.NewMACStats(cell, sm.SchemeFB, a)
		if err := a.RegisterFunction(mac); err != nil {
			return nil, err
		}
		if _, err := a.Connect("scaleload"); err != nil {
			return nil, err
		}
		agents = append(agents, a)
		cells[ci] = cell
		fns[ci] = []agent.RANFunction{mac}
	}
	if !WaitUntil(waitShort, func() bool { return len(srv.Agents()) == opts.Cells }) {
		return nil, fmt.Errorf("only %d/%d agents connected", len(srv.Agents()), opts.Cells)
	}

	fleet := ran.NewFleet(cells, 0, func(now int64) {
		for _, f := range fns {
			sm.TickAll(f, now)
		}
	})
	defer fleet.Close()

	// Warm up: fill backlogs and wake heaps, flush the first reports.
	fleet.Step(2 * int(opts.PeriodMS))
	if !WaitUntil(waitShort, func() bool { n, _ := mon.Counters(); return n > 0 }) {
		return nil, fmt.Errorf("no indications reached the monitor")
	}
	if h := metrics.HeapInUse(); h > heapBase {
		res.HeapKBPerUE = float64(h-heapBase) / 1024 / float64(totalUE)
	}

	fleet.ResetSlotStats()
	ind0, by0 := mon.Counters()
	t0 := time.Now()
	deadline := t0.Add(opts.Duration)
	slots := 0
	for time.Now().Before(deadline) {
		fleet.Step(20)
		slots += 20
	}
	sec := time.Since(t0).Seconds()
	ind1, by1 := mon.Counters()

	res.Slots = slots
	res.UESlotsPS = float64(totalUE) * float64(slots) / sec
	res.IndPS = float64(ind1-ind0) / sec
	res.MBInPS = float64(by1-by0) / (1 << 20) / sec
	_, p99, _ := fleet.SlotLatencyNS()
	res.P99SlotMS = float64(p99) / 1e6
	res.Series = store.NumSeries()
	return res, nil
}

// String renders the scale-out table.
func (r *ScaleLoadResult) String() string {
	rows := [][]string{{
		fmt.Sprintf("%d", r.Cells),
		fmt.Sprintf("%d", r.Cells*r.UEsPerCell),
		fmt.Sprintf("%d%%", r.IdlePct),
		fmt.Sprintf("%d", r.Shards),
		fmt.Sprintf("%d", r.Workers),
		fmt.Sprintf("%d", r.Slots),
		fmt.Sprintf("%.0f", r.UESlotsPS),
		fmt.Sprintf("%.0f", r.IndPS),
		fmt.Sprintf("%.2f", r.MBInPS),
		fmt.Sprintf("%.2f", r.P99SlotMS),
		fmt.Sprintf("%.1f", r.HeapKBPerUE),
		fmt.Sprintf("%d", r.Series),
	}}
	return fmt.Sprintf("scaleload — sharded fleet with per-shard MAC reports into pipelined ingest, %v window\n", r.Duration) +
		Table([]string{"cells", "ues", "idle", "shards", "workers", "slots",
			"ue_slots/s", "ind/s", "MB/s", "p99 ms", "KB/ue", "series"}, rows)
}
