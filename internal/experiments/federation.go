package experiments

import (
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"flexric/internal/agent"
	"flexric/internal/e2ap"
	"flexric/internal/federation"
	"flexric/internal/ran"
	"flexric/internal/resilience"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/tsdb"
)

// FederationDemo is the federation subsystem's acceptance experiment
// (`make federation-demo`): a root controller federates shard
// controllers that split a fleet of base stations by consistent
// hashing. The demo drives monitored traffic through every shard,
// takes a federated windowed-aggregate baseline, kills the shard owning
// agent 1, and requires that (a) every orphaned agent re-homes to its
// ring successor, (b) the root's cross-shard subscription streams
// resume, and (c) the same federated query over the pre-kill window
// still returns the baseline aggregate — the successor restored the
// dead shard's tsdb snapshot.

// FederationOptions parameterizes one federation run.
type FederationOptions struct {
	E2Scheme e2ap.Scheme
	SMScheme sm.Scheme
	// Shards is the controller-plane size (default 3).
	Shards int
	// Agents is the fleet size, node IDs 1..Agents (default 12).
	Agents int
	// Timeout bounds each phase (default 30s).
	Timeout time.Duration
}

// FederationResult reports the failover evidence.
type FederationResult struct {
	Scheme        string
	Shards        int
	Agents        int
	Victim        string // killed shard
	Orphans       int    // agents the victim owned
	Failovers     int    // root failover count (must be 1)
	IndsBefore    uint64 // root-side indications before the kill
	IndsAfter     uint64 // root-side indications after recovery
	BaselineCount int    // federated aggregate count over the fixed window
	PostKillCount int    // same query after failover (must match)
	MeanRelErr    float64
	P95Buckets    int // p95 drift across failover, in histogram buckets
}

// String renders the result as a table.
func (r *FederationResult) String() string {
	return Table(
		[]string{"scheme", "shards", "agents", "victim", "orphans", "failovers", "inds before", "inds after", "window count", "post-kill count", "mean relerr", "p95 buckets"},
		[][]string{{
			r.Scheme,
			fmt.Sprint(r.Shards),
			fmt.Sprint(r.Agents),
			r.Victim,
			fmt.Sprint(r.Orphans),
			fmt.Sprint(r.Failovers),
			fmt.Sprint(r.IndsBefore),
			fmt.Sprint(r.IndsAfter),
			fmt.Sprint(r.BaselineCount),
			fmt.Sprint(r.PostKillCount),
			fmt.Sprintf("%.2e", r.MeanRelErr),
			fmt.Sprint(r.P95Buckets),
		}},
	)
}

// fedBS is one monitored base station of the federated fleet: a cell
// with saturating traffic, an agent placed on the ring by a Placer and
// re-homed by it after a shard death.
type fedBS struct {
	cell *ran.Cell
	a    *agent.Agent
	fns  []agent.RANFunction
}

func fedRes() *resilience.Config {
	return &resilience.Config{
		KeepaliveInterval: raceTimeScale * 20 * time.Millisecond,
		DeadAfter:         raceTimeScale * 100 * time.Millisecond,
		RetainFor:         raceTimeScale * 150 * time.Millisecond,
		Backoff:           resilience.BackoffPolicy{Base: 10 * time.Millisecond, Max: raceTimeScale * 50 * time.Millisecond},
	}
}

func newFedBS(nodeID uint64, e2s e2ap.Scheme, sms sm.Scheme, pl *federation.Placer) (*fedBS, error) {
	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT4G, NumRB: 25})
	if err != nil {
		return nil, err
	}
	a := agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{
			PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: nodeID,
		},
		Scheme:     e2s,
		Resilience: fedRes(),
		Rehome:     pl.Rehome,
	})
	b := &fedBS{cell: cell, a: a}
	b.fns = []agent.RANFunction{sm.NewMACStats(cell, sms, a)}
	for _, fn := range b.fns {
		if err := a.RegisterFunction(fn); err != nil {
			return nil, err
		}
	}
	if _, err := cell.Attach(1, "", "208.95", 24); err != nil {
		return nil, err
	}
	if err := Saturate(cell, 1); err != nil {
		return nil, err
	}
	home, err := pl.Home()
	if err != nil {
		return nil, err
	}
	if _, err := a.Connect(home); err != nil {
		return nil, err
	}
	return b, nil
}

func (b *fedBS) step() {
	b.cell.Step(1)
	sm.TickAll(b.fns, b.cell.Now())
}

// FederationDemo runs the kill-one-shard acceptance scenario.
func FederationDemo(opts FederationOptions) (*FederationResult, error) {
	if opts.Shards == 0 {
		opts.Shards = 3
	}
	if opts.Agents == 0 {
		opts.Agents = 12
	}
	if opts.Timeout == 0 {
		opts.Timeout = 30 * time.Second
	}
	snapDir, err := os.MkdirTemp("", "fed-demo-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(snapDir)

	members := make([]string, opts.Shards)
	for i := range members {
		members[i] = fmt.Sprintf("s%d", i)
	}
	ring := federation.NewRing(federation.DefaultReplicas, members...)

	shards := make(map[string]*federation.Shard, opts.Shards)
	defer func() {
		for _, sh := range shards {
			sh.Close()
		}
	}()
	for i, name := range members {
		sh, err := federation.NewShard(federation.ShardConfig{
			Name: name, Index: i,
			E2Scheme: opts.E2Scheme, SMScheme: opts.SMScheme,
			SouthAddr: "127.0.0.1:0", ObsAddr: "127.0.0.1:0",
			SnapshotDir: snapDir,
			Resilience:  fedRes(),
			PeriodMS:    5,
		})
		if err != nil {
			return nil, err
		}
		shards[name] = sh
	}
	root, err := federation.NewRoot(federation.RootConfig{
		Ring: ring, E2Scheme: opts.E2Scheme,
		ListenAddr: "127.0.0.1:0",
		Resilience: fedRes(), CoordPeriodMS: 20,
	})
	if err != nil {
		return nil, err
	}
	defer root.Close()
	for _, sh := range shards {
		if err := sh.ConnectRoot(root.Addr()); err != nil {
			return nil, err
		}
	}

	addrs := make(map[string]string, opts.Shards)
	for name, sh := range shards {
		addrs[name] = sh.SouthAddr()
	}
	var fleet []*fedBS
	defer func() {
		for _, b := range fleet {
			b.a.Close()
		}
	}()
	for id := uint64(1); id <= uint64(opts.Agents); id++ {
		b, err := newFedBS(id, opts.E2Scheme, opts.SMScheme, federation.NewPlacer(ring, addrs, id))
		if err != nil {
			return nil, err
		}
		fleet = append(fleet, b)
	}

	// drive steps every cell (real time paces the resilience layer
	// underneath) until cond holds.
	var stepMu sync.Mutex
	drive := func(what string, cond func() bool) error {
		deadline := time.Now().Add(opts.Timeout)
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("federation: timeout waiting for %s", what)
			}
			stepMu.Lock()
			for i := 0; i < 5; i++ {
				for _, b := range fleet {
					b.step()
				}
			}
			stepMu.Unlock()
			time.Sleep(time.Millisecond)
		}
		return nil
	}

	// Phase 1: the fleet registers, each agent at its ring owner.
	if err := drive("fleet registered at ring owners", func() bool {
		for id := uint64(1); id <= uint64(opts.Agents); id++ {
			name, serving := root.ShardOwning(id)
			if !serving || name != ring.Owner(id) {
				return false
			}
		}
		return true
	}); err != nil {
		return nil, err
	}

	// Phase 2: cross-shard routing — one root subscription per agent,
	// counted per agent so stream resume is assertable per orphan.
	counts := make([]atomic.Uint64, opts.Agents+1)
	for id := uint64(1); id <= uint64(opts.Agents); id++ {
		key := id
		if _, err := root.Subscribe(key, sm.IDMACStats,
			sm.EncodeTrigger(opts.SMScheme, sm.Trigger{PeriodMS: 5}),
			[]e2ap.Action{{ID: 1, Type: e2ap.ActionReport}},
			server.SubscriptionCallbacks{OnIndication: func(ev server.IndicationEvent) {
				counts[key].Add(1)
			}}); err != nil {
			return nil, err
		}
	}
	total := func() uint64 {
		var n uint64
		for i := range counts {
			n += counts[i].Load()
		}
		return n
	}
	if err := drive("root indications from every agent", func() bool {
		for id := 1; id <= opts.Agents; id++ {
			if counts[id].Load() == 0 {
				return false
			}
		}
		return true
	}); err != nil {
		return nil, err
	}

	res := &FederationResult{
		Scheme: string(opts.E2Scheme),
		Shards: opts.Shards,
		Agents: opts.Agents,
	}

	// Phase 3: federated query baseline over a fixed absolute window.
	if err := drive("ingested history", func() bool {
		var series int
		for _, sh := range shards {
			series += sh.DB().NumSeries()
		}
		return series >= opts.Agents
	}); err != nil {
		return nil, err
	}
	to := time.Now().UnixNano()
	base, ok, err := root.FederatedAggregate("all", "mac", "all", "throughput_bps", 0, to)
	if err != nil || !ok {
		return nil, fmt.Errorf("federation: baseline aggregate: ok=%v err=%v", ok, err)
	}
	res.BaselineCount = base.Count
	res.IndsBefore = total()

	// Phase 4: kill the shard owning agent 1.
	victim := ring.Owner(1)
	res.Victim = victim
	var orphans []uint64
	for id := uint64(1); id <= uint64(opts.Agents); id++ {
		if ring.Owner(id) == victim {
			orphans = append(orphans, id)
		}
	}
	res.Orphans = len(orphans)
	preKill := make(map[uint64]uint64, len(orphans))
	for _, id := range orphans {
		preKill[id] = counts[id].Load()
	}
	if err := shards[victim].Close(); err != nil {
		return nil, fmt.Errorf("federation: close victim: %w", err)
	}
	delete(shards, victim)

	// Phase 5: every orphan re-homes to its ring successor among the
	// survivors, and its root stream resumes.
	live := func(m string) bool { return m != victim }
	if err := drive("orphans re-homed to ring successors", func() bool {
		for _, id := range orphans {
			name, serving := root.ShardOwning(id)
			if !serving || name != ring.OwnerLive(id, live) {
				return false
			}
		}
		return true
	}); err != nil {
		return nil, err
	}
	if err := drive("orphan streams resumed", func() bool {
		for _, id := range orphans {
			if counts[id].Load() <= preKill[id] {
				return false
			}
		}
		return true
	}); err != nil {
		return nil, err
	}
	res.IndsAfter = total()

	// Phase 6: the pre-kill window is intact — the successor restored
	// the victim's snapshot, so the identical federated query returns
	// the baseline aggregate with one shard fewer.
	post, ok, err := root.FederatedAggregate("all", "mac", "all", "throughput_bps", 0, to)
	if err != nil || !ok {
		return nil, fmt.Errorf("federation: post-kill aggregate: ok=%v err=%v", ok, err)
	}
	res.PostKillCount = post.Count
	if post.Count != base.Count || post.Min != base.Min || post.Max != base.Max {
		return nil, fmt.Errorf("federation: failover changed the window: base %+v post %+v", base, post)
	}
	res.MeanRelErr = relErr(post.Mean, base.Mean)
	if res.MeanRelErr > 1e-9 {
		return nil, fmt.Errorf("federation: mean drifted %.3e across failover", res.MeanRelErr)
	}
	res.P95Buckets = p95BucketDistance(post.P95, base.P95)
	if res.P95Buckets > 1 {
		return nil, fmt.Errorf("federation: p95 moved %d buckets across failover (%v vs %v)",
			res.P95Buckets, post.P95, base.P95)
	}
	snap, _ := root.Snapshot().(federation.FedSnapshot)
	res.Failovers = snap.Failovers
	if res.Failovers != 1 {
		return nil, fmt.Errorf("federation: %d failovers, want 1", res.Failovers)
	}
	return res, nil
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// p95BucketDistance measures how many log-scale histogram buckets
// (tsdb's gamma) separate two p95 estimates.
func p95BucketDistance(a, b float64) int {
	if a <= 0 || b <= 0 {
		if a == b {
			return 0
		}
		return 1 << 20
	}
	d := int(math.Round(math.Log(a)/math.Log(tsdb.HistGamma))) -
		int(math.Round(math.Log(b)/math.Log(tsdb.HistGamma)))
	if d < 0 {
		d = -d
	}
	return d
}
