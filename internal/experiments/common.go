// Package experiments implements the paper's evaluation (§5 and §6):
// every table and figure has a function that reproduces its workload and
// returns the rows/series the paper reports. The cmd/flexric-bench CLI
// prints them; the repository-root benchmarks run reduced versions.
//
// Absolute numbers differ from the paper's i7/Xeon + RF testbed — the
// substrate here is a simulator (see DESIGN.md) — but the comparisons
// (who wins, by roughly what factor, where crossovers fall) are the
// reproduction targets, recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"flexric/internal/agent"
	"flexric/internal/e2ap"
	"flexric/internal/metrics"
	"flexric/internal/ran"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/telemetry"
)

// ResetTelemetry clears accumulated telemetry so an experiment reads
// only its own numbers. No-op when compiled with -tags notelemetry.
func ResetTelemetry() { telemetry.Reset() }

// TelemetryReport renders the telemetry accumulated since the last
// reset — the same counters and histograms the root benchmarks and the
// example binaries print (see docs/OBSERVABILITY.md for the row
// catalogue).
func TelemetryReport() string {
	var sb strings.Builder
	_ = telemetry.Dump(&sb)
	return sb.String()
}

// BS bundles a simulated base station with its FlexRIC agent and the SM
// bundle, driven by an explicit slot loop.
type BS struct {
	Cell  *ran.Cell
	Agent *agent.Agent
	Fns   []agent.RANFunction
}

// BSOptions configures NewBS.
type BSOptions struct {
	NodeID   uint64
	RAT      ran.RAT
	NumRB    int
	E2Scheme e2ap.Scheme
	SMScheme sm.Scheme
	// Layers selects which SM functions to register; nil = all.
	Layers []string
	// Controller is the E2 address to connect to; empty = no agent.
	Controller string
}

// NewBS builds a base station; with Controller set it connects the
// agent.
func NewBS(opts BSOptions) (*BS, error) {
	cell, err := ran.NewCell(ran.PHYConfig{RAT: opts.RAT, NumRB: opts.NumRB})
	if err != nil {
		return nil, err
	}
	b := &BS{Cell: cell}
	if opts.Controller == "" {
		return b, nil
	}
	a := agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{
			PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: opts.NodeID,
		},
		Scheme: opts.E2Scheme,
	})
	b.Agent = a
	want := map[string]bool{}
	for _, l := range opts.Layers {
		want[l] = true
	}
	all := len(opts.Layers) == 0
	add := func(name string, fn agent.RANFunction) error {
		if all || want[name] {
			return a.RegisterFunction(fn)
		}
		return nil
	}
	regs := []struct {
		name string
		fn   agent.RANFunction
	}{
		{"mac", sm.NewMACStats(cell, opts.SMScheme, a)},
		{"rlc", sm.NewRLCStats(cell, opts.SMScheme, a)},
		{"pdcp", sm.NewPDCPStats(cell, opts.SMScheme, a)},
		{"slice", sm.NewSliceCtrl(cell, opts.SMScheme)},
		{"tc", sm.NewTCCtrl(cell, opts.SMScheme, a)},
		{"hw", sm.NewHW()},
	}
	for _, r := range regs {
		if err := add(r.name, r.fn); err != nil {
			return nil, err
		}
		if all || want[r.name] {
			b.Fns = append(b.Fns, r.fn)
		}
	}
	if _, err := a.Connect(opts.Controller); err != nil {
		return nil, err
	}
	return b, nil
}

// Close disconnects the agent.
func (b *BS) Close() {
	if b.Agent != nil {
		b.Agent.Close()
	}
}

// RunSim advances the base station by simMS TTIs as fast as possible,
// ticking SM reporters each TTI.
func (b *BS) RunSim(simMS int) {
	for i := 0; i < simMS; i++ {
		b.Cell.Step(1)
		sm.TickAll(b.Fns, b.Cell.Now())
	}
}

// RunSimPaced advances like RunSim but throttles so the socket receivers
// keep up (used when indications flow at 1 kHz per layer).
func (b *BS) RunSimPaced(simMS int, pace time.Duration) {
	for i := 0; i < simMS; i++ {
		b.Cell.Step(1)
		sm.TickAll(b.Fns, b.Cell.Now())
		if pace > 0 {
			time.Sleep(pace)
		}
	}
}

// StartServer brings up a FlexRIC server on a loopback port.
func StartServer(scheme e2ap.Scheme) (*server.Server, string, error) {
	s := server.New(server.Config{Scheme: scheme})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return s, addr, nil
}

// Saturate attaches a saturating downlink source to a UE.
func Saturate(cell *ran.Cell, rnti uint16) error {
	return cell.AddTraffic(rnti, &ran.Saturating{
		Flow:           ran.FiveTuple{DstIP: uint32(rnti), DstPort: 5001, Proto: ran.ProtoUDP},
		RateBytesPerMS: 4 * ran.CellCapacityBits(cell.Config().NumRB, ran.MaxMCS) / 8,
	})
}

// WaitUntil polls cond until it holds or the deadline passes.
func WaitUntil(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// Table renders rows as an aligned text table.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	line(header)
	for i, w := range width {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}

// Mbps formats a bit count over a window as Mbit/s.
func Mbps(bits uint64, ms int64) float64 {
	if ms <= 0 {
		return 0
	}
	return float64(bits) / float64(ms) * 1000 / 1e6
}

// heapSinceMB returns live-heap growth since base in MB, clamped at zero
// (GC can shrink the heap below the baseline).
func heapSinceMB(base uint64) float64 {
	h := metrics.HeapInUse()
	if h < base {
		return 0
	}
	return metrics.MB(h - base)
}
