package experiments

import (
	"flexric/internal/flexran"
	"flexric/internal/transport"
)

// fakeFlexRANAgent speaks the FlexRAN protocol without a cell behind it
// — the FlexRAN-side counterpart of DummyAgent for the Fig. 8a load
// comparison.
type fakeFlexRANAgent struct {
	bsID uint64
	nUE  int
	tc   transport.Conn
	seq  uint64
}

func newFakeFlexRANAgent(bsID uint64, nUE int, addr string) (*fakeFlexRANAgent, error) {
	tc, err := transport.Dial(transport.KindSCTPish, addr)
	if err != nil {
		return nil, err
	}
	wire, err := flexran.Encode(flexran.MsgHello, &flexran.Hello{BSID: bsID})
	if err != nil {
		tc.Close()
		return nil, err
	}
	if err := tc.Send(wire); err != nil {
		tc.Close()
		return nil, err
	}
	a := &fakeFlexRANAgent{bsID: bsID, nUE: nUE, tc: tc}
	// Drain controller messages (stats requests etc.) in the background.
	go func() {
		for {
			if _, err := tc.Recv(); err != nil {
				return
			}
		}
	}()
	return a, nil
}

// tick sends one synthetic all-layer stats report.
func (a *fakeFlexRANAgent) tick(now int64) {
	a.seq++
	rep := &flexran.StatsReport{BSID: a.bsID, TimeMS: now}
	for i := 0; i < a.nUE; i++ {
		rep.UEs = append(rep.UEs, flexran.UEStats{
			RNTI:      uint16(i + 1),
			CQI:       15,
			MCS:       28,
			RBsUsed:   a.seq * 25,
			MACTxBits: a.seq * 16000,
		})
	}
	if wire, err := flexran.Encode(flexran.MsgStatsReport, rep); err == nil {
		_ = a.tc.Send(wire)
	}
}

func (a *fakeFlexRANAgent) close() { a.tc.Close() }
