//go:build !nofaultinject

package experiments

import (
	"encoding/json"
	"net/http"
	"testing"

	"flexric/internal/a1"
	"flexric/internal/e2ap"
	"flexric/internal/obs"
	"flexric/internal/sm"
)

// TestSLADemo is the A1 policy plane's acceptance demo (`make
// sla-demo`): under both codecs, an SLA policy installed over the A1
// northbound is enforced by the closed loop — a load surge on the
// neighbouring slice breaks the target (VIOLATED), the loop shifts NVS
// capacity toward the SLA slice until the target holds again
// (ENFORCED), slice churn and a scripted reconnect storm do not unseat
// the verdict, and every transition is visible on the control-room a1
// stream channel and at /a1/status.
func TestSLADemo(t *testing.T) {
	schemes := []struct {
		e2 e2ap.Scheme
		sm sm.Scheme
	}{
		{e2ap.SchemeASN, sm.SchemeASN},
		{e2ap.SchemeFB, sm.SchemeFB},
	}
	for _, sc := range schemes {
		t.Run(string(sc.e2), func(t *testing.T) {
			res, err := SLALoad(SLALoadOptions{E2Scheme: sc.e2, SMScheme: sc.sm})
			if err != nil {
				t.Fatal(err)
			}
			if res.FinalStatus != "ENFORCED" {
				t.Errorf("final status = %s, want ENFORCED", res.FinalStatus)
			}
			if res.BaselineMbps <= res.TargetMbps {
				t.Errorf("baseline %.1f Mbps not above the %.1f target (no borrowing?)",
					res.BaselineMbps, res.TargetMbps)
			}
			if res.SurgeMbps >= res.TargetMbps {
				t.Errorf("surge %.1f Mbps did not break the %.1f target", res.SurgeMbps, res.TargetMbps)
			}
			if res.RemediedMbps <= res.TargetMbps {
				t.Errorf("remedied %.1f Mbps still below the %.1f target", res.RemediedMbps, res.TargetMbps)
			}
			if res.Remedies == 0 {
				t.Error("no weight remedies fired")
			}
			if res.Share1 <= res.Share0 {
				t.Errorf("slice-1 share not raised: %.2f -> %.2f", res.Share0, res.Share1)
			}
			if res.Transitions < 3 {
				t.Errorf("transitions = %d, want >= 3 (ENFORCED, VIOLATED, ENFORCED)", res.Transitions)
			}
			if res.Drops != 3 || res.Reconnects < 3 {
				t.Errorf("reconnect storm: drops=%d reconnects=%d, want 3 / >=3", res.Drops, res.Reconnects)
			}
			if res.StreamEvents == 0 || !res.SawViolated || !res.SawEnforced {
				t.Errorf("a1 stream channel: events=%d violated=%v enforced=%v",
					res.StreamEvents, res.SawViolated, res.SawEnforced)
			}
			t.Log("\n" + res.String())
		})
	}
}

// TestSLAStatusSummaryJSON pins the /a1/status JSON contract the demo
// (and an operator's curl) relies on.
func TestSLAStatusSummaryJSON(t *testing.T) {
	store := a1.NewStore()
	if _, err := store.Create(a1.Policy{
		ID: "demo", TypeID: a1.TypeSliceSLA, Agent: 0, WindowMS: 400,
		Targets: []a1.SliceTarget{{SliceID: 1, MinThroughputMbps: 45}},
	}); err != nil {
		t.Fatal(err)
	}
	store.SetStatus("demo", a1.StatusEnforced, "all targets met")
	o, err := obs.NewServer("127.0.0.1:0", obs.WithA1(store))
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	resp, err := http.Get("http://" + o.Addr() + "/a1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sum struct {
		Policies   int `json:"policies"`
		Enforced   int `json:"enforced"`
		Violated   int `json:"violated"`
		NotApplied int `json:"not_applied"`
		States     []struct {
			Status string `json:"status"`
		} `json:"states"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.Policies != 1 || sum.Enforced != 1 || len(sum.States) != 1 || sum.States[0].Status != "ENFORCED" {
		t.Fatalf("summary %+v", sum)
	}
}
