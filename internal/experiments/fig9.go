package experiments

import (
	"fmt"
	"time"

	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/metrics"
	"flexric/internal/oranric"
	"flexric/internal/ran"
	"flexric/internal/sm"
	"flexric/internal/transport"
)

// Fig. 9: "Comparison of O-RAN RIC and (dockerized) FlexRIC" (§5.4).
// (a) two-hop ping RTT: FlexRIC with a relaying controller (FB/FB and
// ASN/ASN) against the O-RAN pipeline (agent → E2T → xApp).
// (b) the monitoring use case: 10 dummy agents × 32 UEs @1 ms; CPU and
// memory of the whole platform.

// Fig9aRow is one bar group of Fig. 9a.
type Fig9aRow struct {
	System  string // "FB/FB", "ASN/ASN", "O-RAN"
	Payload int
	RTT     RTTStats
}

// Fig9aResult is the Fig. 9a dataset.
type Fig9aResult struct {
	Rows []Fig9aRow
}

// Fig9a reproduces Fig. 9a with n pings per configuration.
func Fig9a(n int, payloads []int) (*Fig9aResult, error) {
	if len(payloads) == 0 {
		payloads = []int{100, 1500}
	}
	res := &Fig9aResult{}

	// FlexRIC two-hop: parent server ← relay ← agent.
	for _, combo := range []EncodingCombo{
		{"FB/FB", e2ap.SchemeFB, sm.SchemeFB},
		{"ASN/ASN", e2ap.SchemeASN, sm.SchemeASN},
	} {
		parent, parentAddr, err := StartServer(combo.E2AP)
		if err != nil {
			return nil, err
		}
		relay, err := ctrl.NewRelay("127.0.0.1:0", parentAddr, combo.E2AP, transport.KindSCTPish,
			[]uint16{sm.IDHelloWorld})
		if err != nil {
			parent.Close()
			return nil, err
		}
		bs, err := NewBS(BSOptions{
			NodeID: 1, RAT: ran.RAT4G, NumRB: 25,
			E2Scheme: combo.E2AP, SMScheme: combo.E2SM,
			Layers: []string{"hw"}, Controller: relay.SouthAddr(),
		})
		if err != nil {
			relay.Close()
			parent.Close()
			return nil, err
		}
		ok := WaitUntil(waitShort, func() bool {
			return len(parent.Agents()) == 1 && len(relay.Server().Agents()) == 1
		})
		if !ok {
			bs.Close()
			relay.Close()
			parent.Close()
			return nil, fmt.Errorf("two-hop topology did not form")
		}
		pinger, err := newHWPinger(parent, parent.Agents()[0].ID, combo.E2AP, combo.E2SM)
		if err != nil {
			bs.Close()
			relay.Close()
			parent.Close()
			return nil, err
		}
		for _, size := range payloads {
			payload := make([]byte, size)
			var samples []time.Duration
			for i := 0; i < n+5; i++ {
				rtt, err := pinger.ping(uint64(i), payload)
				if err != nil {
					bs.Close()
					relay.Close()
					parent.Close()
					return nil, err
				}
				if i >= 5 {
					samples = append(samples, rtt)
				}
			}
			res.Rows = append(res.Rows, Fig9aRow{System: combo.Name, Payload: size, RTT: summarize(samples)})
		}
		bs.Close()
		relay.Close()
		parent.Close()
	}

	// O-RAN pipeline: agent → E2T → xApp (two hops, double decode).
	ric, err := oranric.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ric.Close()
	bs, err := NewBS(BSOptions{
		NodeID: 1, RAT: ran.RAT4G, NumRB: 25,
		E2Scheme: e2ap.SchemeASN, SMScheme: sm.SchemeASN,
		Layers: []string{"hw"}, Controller: ric.Addr(),
	})
	if err != nil {
		return nil, err
	}
	defer bs.Close()
	if !WaitUntil(waitShort, func() bool { return len(ric.Agents()) == 1 }) {
		return nil, fmt.Errorf("agent did not register at O-RAN RIC")
	}
	agentID := ric.Agents()[0]
	pongs := make(chan int64, 64)
	subbed := make(chan struct{}, 1)
	x := ric.DeployXApp("hw-ping", oranric.XAppCallbacks{
		OnSubscribed: func(int) {
			select {
			case subbed <- struct{}{}:
			default:
			}
		},
		OnIndication: func(ag int, ind *e2ap.Indication) {
			if p, err := sm.DecodeHWPing(ind.Payload); err == nil {
				select {
				case pongs <- p.T0:
				default:
				}
			}
		},
	})
	if err := x.Subscribe(agentID, sm.IDHelloWorld,
		sm.EncodeTrigger(sm.SchemeASN, sm.Trigger{PeriodMS: 1}), nil); err != nil {
		return nil, err
	}
	select {
	case <-subbed:
	case <-time.After(waitShort):
		return nil, fmt.Errorf("O-RAN subscription not confirmed")
	}
	for _, size := range payloads {
		payload := make([]byte, size)
		var samples []time.Duration
		for i := 0; i < n+5; i++ {
			t0 := time.Now().UnixNano()
			ping := &sm.HWPing{Seq: uint64(i), T0: t0, Data: payload}
			if err := x.Control(agentID, sm.IDHelloWorld, nil, sm.EncodeHWPing(sm.SchemeASN, ping), false); err != nil {
				return nil, err
			}
			deadline := time.After(waitShort)
		waitPong:
			for {
				select {
				case got := <-pongs:
					if got == t0 {
						if i >= 5 {
							samples = append(samples, time.Duration(time.Now().UnixNano()-t0))
						}
						break waitPong
					}
				case <-deadline:
					return nil, fmt.Errorf("O-RAN ping timeout")
				}
			}
		}
		res.Rows = append(res.Rows, Fig9aRow{System: "O-RAN", Payload: size, RTT: summarize(samples)})
	}
	return res, nil
}

// String renders the Fig. 9a table.
func (r *Fig9aResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.System,
			fmt.Sprintf("%dB", row.Payload),
			fmt.Sprintf("%.0f", float64(row.RTT.Mean.Microseconds())),
			fmt.Sprintf("%.0f", float64(row.RTT.P50.Microseconds())),
			fmt.Sprintf("%.0f", float64(row.RTT.P95.Microseconds())),
		})
	}
	return "Fig 9a — two-hop ping RTT (µs)\n" +
		Table([]string{"system", "payload", "mean", "p50", "p95"}, rows)
}

// Fig9bResult is the Fig. 9b dataset.
type Fig9bResult struct {
	FlexRICCPU float64
	ORANCPU    float64
	// FlexRICMem is measured controller state; ORANMem adds the modeled
	// always-on platform residency (paper: docker stats across the 15
	// components + xApp).
	FlexRICMem float64
	ORANMem    float64
	Agents     int
	Duration   time.Duration
	// DoubleDecodes diagnoses the O-RAN pipeline (E2T + xApp decodes).
	E2TDecodes, XAppDecodes uint64
}

// Fig9b reproduces Fig. 9b: the monitoring use case on both platforms.
func Fig9b(agents int, d time.Duration) (*Fig9bResult, error) {
	res := &Fig9bResult{Agents: agents, Duration: d}

	// --- FlexRIC ---
	{
		srv, addr, err := StartServer(e2ap.SchemeASN) // O-RAN-standard encoding on both systems
		if err != nil {
			return nil, err
		}
		mon := ctrl.NewMonitor(srv, ctrl.MonitorConfig{Scheme: sm.SchemeASN, PeriodMS: 1, Layers: ctrl.MonMAC})
		memBase := metrics.HeapInUse()
		var dummies []*DummyAgent
		for i := 0; i < agents; i++ {
			da, err := StartDummyAgent(uint64(i+1), addr, e2ap.SchemeASN, sm.SchemeASN, 32, time.Millisecond)
			if err != nil {
				srv.Close()
				return nil, err
			}
			dummies = append(dummies, da)
		}
		if !WaitUntil(waitShort, func() bool {
			n, _ := mon.Counters()
			return n > uint64(agents*10)
		}) {
			srv.Close()
			return nil, fmt.Errorf("indications not flowing (flexric)")
		}
		m := metrics.StartCPU()
		time.Sleep(d)
		res.FlexRICCPU = m.NormalizedPercent()
		res.FlexRICMem = heapSinceMB(memBase)
		for _, da := range dummies {
			da.Close()
		}
		srv.Close()
	}

	// --- O-RAN RIC ---
	{
		ric, err := oranric.Start("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		var stored uint64
		memBase := metrics.HeapInUse()
		x := ric.DeployXApp("stats", oranric.XAppCallbacks{
			OnIndication: func(ag int, ind *e2ap.Indication) {
				if rep, err := sm.DecodeMACReport(ind.Payload); err == nil {
					stored += uint64(len(rep.UEs))
				}
			},
		})
		var dummies []*DummyAgent
		for i := 0; i < agents; i++ {
			da, err := StartDummyAgent(uint64(i+1), ric.Addr(), e2ap.SchemeASN, sm.SchemeASN, 32, time.Millisecond)
			if err != nil {
				ric.Close()
				return nil, err
			}
			dummies = append(dummies, da)
		}
		if !WaitUntil(waitShort, func() bool { return len(ric.Agents()) == agents }) {
			ric.Close()
			return nil, fmt.Errorf("agents missing (oran)")
		}
		for _, id := range ric.Agents() {
			if err := x.Subscribe(id, sm.IDMACStats,
				sm.EncodeTrigger(sm.SchemeASN, sm.Trigger{PeriodMS: 1}),
				[]e2ap.Action{{ID: 1, Type: e2ap.ActionReport}}); err != nil {
				ric.Close()
				return nil, err
			}
		}
		if !WaitUntil(waitShort, func() bool {
			_, xd := ric.DoubleDecodes()
			return xd > uint64(agents*10)
		}) {
			ric.Close()
			return nil, fmt.Errorf("indications not flowing (oran)")
		}
		m := metrics.StartCPU()
		time.Sleep(d)
		res.ORANCPU = m.NormalizedPercent()
		res.ORANMem = heapSinceMB(memBase) +
			float64(oranric.PlatformResidentMB()) + oranric.XAppResidentMB
		res.E2TDecodes, res.XAppDecodes = ric.DoubleDecodes()
		for _, da := range dummies {
			da.Close()
		}
		ric.Close()
		_ = stored
	}
	return res, nil
}

// String renders the Fig. 9b table.
func (r *Fig9bResult) String() string {
	rows := [][]string{
		{"FlexRIC", fmt.Sprintf("%.2f", r.FlexRICCPU), fmt.Sprintf("%.1f", r.FlexRICMem)},
		{"O-RAN RIC", fmt.Sprintf("%.2f", r.ORANCPU), fmt.Sprintf("%.1f", r.ORANMem)},
	}
	return fmt.Sprintf("Fig 9b — monitoring use case, %d agents x 32 UEs @1ms, %v (O-RAN decodes: e2t=%d xapp=%d)\n",
		r.Agents, r.Duration, r.E2TDecodes, r.XAppDecodes) +
		Table([]string{"platform", "CPU %", "memory MB"}, rows)
}
