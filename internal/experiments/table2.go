package experiments

import (
	"fmt"
	"os"

	"flexric/internal/oranric"
)

// Table 2: deployment artifact sizes. The paper compares docker image
// sizes: a dockerized FlexRIC controller (76–94 MB, dominated by the
// Ubuntu base image) against the O-RAN RIC platform (15 components,
// 2469 MB) plus per-use-case xApp containers. Here the FlexRIC rows are
// the actual sizes of this repository's static binaries — no container
// is needed at all, which sharpens the paper's ultra-lean argument — and
// the O-RAN rows come from the calibrated component inventory
// (internal/oranric/footprint.go).

// Table2Row is one artifact.
type Table2Row struct {
	Component string
	SizeMB    float64
	Source    string // "measured" or "paper-calibrated model"
}

// Table2Result is the Table 2 dataset.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 builds the artifact-size comparison. binaries maps display
// names to paths of built executables; missing files fall back to the
// running executable's size.
func Table2(binaries map[string]string) (*Table2Result, error) {
	res := &Table2Result{}
	if len(binaries) == 0 {
		self, err := os.Executable()
		if err == nil {
			binaries = map[string]string{"flexric (this harness binary)": self}
		}
	}
	for name, path := range binaries {
		fi, err := os.Stat(path)
		if err != nil {
			continue
		}
		res.Rows = append(res.Rows, Table2Row{
			Component: name,
			SizeMB:    float64(fi.Size()) / (1 << 20),
			Source:    "measured",
		})
	}
	res.Rows = append(res.Rows, Table2Row{
		Component: fmt.Sprintf("O-RAN RIC platform (%d components)", len(oranric.PlatformComponents())),
		SizeMB:    float64(oranric.PlatformImageMB()),
		Source:    "paper-calibrated model",
	})
	res.Rows = append(res.Rows,
		Table2Row{Component: "O-RAN HW xApp", SizeMB: oranric.HWXAppImageMB, Source: "paper-calibrated model"},
		Table2Row{Component: "O-RAN stats xApp", SizeMB: oranric.StatsXAppImageMB, Source: "paper-calibrated model"},
	)
	return res, nil
}

// String renders the Table 2 comparison.
func (r *Table2Result) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Component,
			fmt.Sprintf("%.1f", row.SizeMB),
			row.Source,
		})
	}
	return "Table 2 — deployment artifact sizes (MB)\n" +
		Table([]string{"component", "size MB", "source"}, rows)
}
