package experiments

import (
	"testing"
	"time"
)

// TestScaleLoadPipeline runs the scale-out experiment at a small
// footprint: per-shard MAC reports from sharded cells over the pipe
// transport must land in the pipelined monitor and materialize series.
func TestScaleLoadPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := ScaleLoad(ScaleLoadOptions{
		Cells: 4, UEsPerCell: 100, IdlePct: 90, Shards: 4,
		PeriodMS: 20, IngestWorkers: 2, Duration: 1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots == 0 || res.UESlotsPS == 0 {
		t.Fatalf("no slots simulated: %+v", res)
	}
	if res.IndPS == 0 {
		t.Fatalf("no indications ingested: %+v", res)
	}
	if res.Series == 0 {
		t.Fatalf("no tsdb series materialized: %+v", res)
	}
	t.Log(res.String())
}
