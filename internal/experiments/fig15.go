package experiments

import (
	"fmt"

	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/ran"
	"flexric/internal/sm"
	"flexric/internal/xapp"
)

// Fig. 15: recursive slicing (§6.2). Two operators, A and B, each with
// two UEs. (a) dedicated infrastructures: two 25 RB eNBs, one slicing
// controller each. (b) shared infrastructure: one 50 RB eNB behind the
// virtualization controller, both operators at a 50 % SLA running the
// SAME slicing controllers against their virtual network.
//
// Timeline (seconds, scaled to the run length):
//
//	~16 %: operator A creates sub-slices 66/34 and moves UE 2 to the
//	       34 % sub-slice (paper: "at around 8 and 11 s").
//	50-83 %: operator B's UE 3 stops transmitting — in the shared case
//	       its resources flow first to B's other UE, and when B is fully
//	       idle, to operator A (multiplexing gain); in the dedicated
//	       case they are wasted.

// Fig15Point is one per-second throughput sample.
type Fig15Point struct {
	TimeMS int64
	UE     [4]float64 // Mbps of UEs 1..4 (index 0..3)
}

// Fig15Series is one deployment's timeline.
type Fig15Series struct {
	Deployment string // "dedicated" or "shared"
	Points     []Fig15Point
}

// Fig15Result is the full Fig. 15 dataset.
type Fig15Result struct {
	Dedicated *Fig15Series
	Shared    *Fig15Series
}

// fig15Traffic wires the experiment's traffic pattern: all UEs saturate,
// but UE 3 pauses in [pauseStart, pauseStop); UE 4 pauses in the final
// sixth of the run, leaving operator B fully idle.
func fig15Traffic(cell *ran.Cell, rnti uint16, simMS int) error {
	rate := 4 * ran.CellCapacityBits(50, 28) / 8
	switch rnti {
	case 3:
		return cell.AddTraffic(rnti, &ran.Saturating{
			Flow:           ran.FiveTuple{DstIP: uint32(rnti), DstPort: 5001, Proto: ran.ProtoUDP},
			RateBytesPerMS: rate,
			StopMS:         int64(simMS / 2),
		})
	case 4:
		return cell.AddTraffic(rnti, &ran.Saturating{
			Flow:           ran.FiveTuple{DstIP: uint32(rnti), DstPort: 5001, Proto: ran.ProtoUDP},
			RateBytesPerMS: rate,
			StopMS:         int64(5 * simMS / 6),
		})
	default:
		return cell.AddTraffic(rnti, &ran.Saturating{
			Flow:           ran.FiveTuple{DstIP: uint32(rnti), DstPort: 5001, Proto: ran.ProtoUDP},
			RateBytesPerMS: rate,
		})
	}
}

// opASubSlices is operator A's reconfiguration: sub-slices 66/34 with
// UE 2 moved into the smaller one.
func opASubSlices(x *xapp.SliceXApp) error {
	if err := x.Deploy(ctrl.SliceConfigJSON{
		Algo: "nvs",
		Slices: []ctrl.SliceParamJSON{
			{ID: 0, Kind: "capacity", Capacity: 0.66, UESched: "pf"},
			{ID: 1, Kind: "capacity", Capacity: 0.34, UESched: "pf"},
		},
	}); err != nil {
		return err
	}
	return x.Associate(2, 1)
}

// Fig15 reproduces both deployments. simMS is the run length in
// simulated ms (paper: 50 s).
func Fig15(simMS int) (*Fig15Result, error) {
	ded, err := fig15Dedicated(simMS)
	if err != nil {
		return nil, fmt.Errorf("dedicated: %w", err)
	}
	sh, err := fig15Shared(simMS)
	if err != nil {
		return nil, fmt.Errorf("shared: %w", err)
	}
	return &Fig15Result{Dedicated: ded, Shared: sh}, nil
}

// fig15Dedicated: two 25 RB eNBs, one per operator, each with its own
// slicing controller.
func fig15Dedicated(simMS int) (*Fig15Series, error) {
	type op struct {
		bs  *BS
		sc  *ctrl.SlicingController
		x   *xapp.SliceXApp
		srv interface{ Close() error }
	}
	var ops [2]op
	for i := 0; i < 2; i++ {
		srv, addr, err := StartServer(e2ap.SchemeASN)
		if err != nil {
			return nil, err
		}
		sc, err := ctrl.NewSlicingController(srv, sm.SchemeASN, "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return nil, err
		}
		bs, err := NewBS(BSOptions{
			NodeID: uint64(i + 1), RAT: ran.RAT4G, NumRB: 25,
			E2Scheme: e2ap.SchemeASN, SMScheme: sm.SchemeASN,
			Layers: []string{"mac", "slice"}, Controller: addr,
		})
		if err != nil {
			sc.Close()
			srv.Close()
			return nil, err
		}
		if !WaitUntil(waitShort, func() bool { return len(srv.Agents()) == 1 }) {
			return nil, fmt.Errorf("op %d agent connect", i)
		}
		ops[i] = op{bs: bs, sc: sc, x: xapp.NewSliceXApp("http://"+sc.Addr(), 0), srv: srv}
		defer ops[i].bs.Close()
		defer ops[i].sc.Close()
		defer srv.Close()
	}
	// Operator A's UEs 1,2 on eNB 0; operator B's UEs 3,4 on eNB 1.
	for i, rnti := range []uint16{1, 2, 3, 4} {
		bs := ops[i/2].bs
		if _, err := bs.Cell.Attach(rnti, "", "208.95", 28); err != nil {
			return nil, err
		}
		if err := fig15Traffic(bs.Cell, rnti, simMS); err != nil {
			return nil, err
		}
	}

	series := &Fig15Series{Deployment: "dedicated"}
	reconfAt := simMS / 6
	reconfDone := false
	var last [4]uint64
	const sample = 1000
	for t := 0; t < simMS; t += sample {
		if !reconfDone && t >= reconfAt {
			if err := opASubSlices(ops[0].x); err != nil {
				return nil, err
			}
			reconfDone = true
		}
		// Step both cells in lockstep.
		for s := 0; s < sample; s++ {
			for i := range ops {
				ops[i].bs.Cell.Step(1)
				sm.TickAll(ops[i].bs.Fns, ops[i].bs.Cell.Now())
			}
		}
		var p Fig15Point
		p.TimeMS = ops[0].bs.Cell.Now()
		for i, rnti := range []uint16{1, 2, 3, 4} {
			bits := ops[i/2].bs.Cell.UEDeliveredBits(rnti)
			p.UE[i] = Mbps(bits-last[i], sample)
			last[i] = bits
		}
		series.Points = append(series.Points, p)
	}
	return series, nil
}

// fig15Shared: one 50 RB eNB, the virtualization controller, and the
// same slicing controllers as tenants.
func fig15Shared(simMS int) (*Fig15Series, error) {
	// Tenant controllers.
	srvA, addrA, err := StartServer(e2ap.SchemeASN)
	if err != nil {
		return nil, err
	}
	defer srvA.Close()
	scA, err := ctrl.NewSlicingController(srvA, sm.SchemeASN, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer scA.Close()
	srvB, addrB, err := StartServer(e2ap.SchemeASN)
	if err != nil {
		return nil, err
	}
	defer srvB.Close()
	scB, err := ctrl.NewSlicingController(srvB, sm.SchemeASN, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer scB.Close()

	vc, southAddr, err := ctrl.NewVirtCtrl(ctrl.VirtConfig{
		Scheme: sm.SchemeASN,
		Tenants: []ctrl.Tenant{
			{Name: "A", SLA: 0.5, Subscribers: map[uint16]bool{1: true, 2: true}},
			{Name: "B", SLA: 0.5, Subscribers: map[uint16]bool{3: true, 4: true}},
		},
		SouthAddr: "127.0.0.1:0",
	})
	if err != nil {
		return nil, err
	}
	defer vc.Close()

	bs, err := NewBS(BSOptions{
		NodeID: 1, RAT: ran.RAT4G, NumRB: 50,
		E2Scheme: e2ap.SchemeASN, SMScheme: sm.SchemeASN,
		Layers: []string{"mac", "slice"}, Controller: southAddr,
	})
	if err != nil {
		return nil, err
	}
	defer bs.Close()
	for _, rnti := range []uint16{1, 2, 3, 4} {
		if _, err := bs.Cell.Attach(rnti, "", "208.95", 28); err != nil {
			return nil, err
		}
		if err := fig15Traffic(bs.Cell, rnti, simMS); err != nil {
			return nil, err
		}
	}
	if !WaitUntil(waitShort, func() bool { return bs.Cell.SliceMode() == ran.SliceNVS }) {
		return nil, fmt.Errorf("virt layer did not install initial slices")
	}
	if err := vc.ConnectTenant(0, addrA); err != nil {
		return nil, err
	}
	if err := vc.ConnectTenant(1, addrB); err != nil {
		return nil, err
	}
	if !WaitUntil(waitShort, func() bool {
		return len(srvA.Agents()) == 1 && len(srvB.Agents()) == 1
	}) {
		return nil, fmt.Errorf("tenant controllers not attached")
	}
	xA := xapp.NewSliceXApp("http://"+scA.Addr(), 0)

	series := &Fig15Series{Deployment: "shared"}
	reconfAt := simMS / 6
	reconfDone := false
	var last [4]uint64
	const sample = 1000
	for t := 0; t < simMS; t += sample {
		if !reconfDone && t >= reconfAt {
			if err := opASubSlices(xA); err != nil {
				return nil, err
			}
			reconfDone = true
		}
		bs.RunSim(sample)
		var p Fig15Point
		p.TimeMS = bs.Cell.Now()
		for i, rnti := range []uint16{1, 2, 3, 4} {
			bits := bs.Cell.UEDeliveredBits(rnti)
			p.UE[i] = Mbps(bits-last[i], sample)
			last[i] = bits
		}
		series.Points = append(series.Points, p)
	}
	return series, nil
}

// String renders both Fig. 15 timelines.
func (r *Fig15Result) String() string {
	render := func(s *Fig15Series) string {
		rows := make([][]string, 0, len(s.Points))
		for _, p := range s.Points {
			rows = append(rows, []string{
				fmt.Sprintf("%d", p.TimeMS/1000),
				fmt.Sprintf("%.1f", p.UE[0]),
				fmt.Sprintf("%.1f", p.UE[1]),
				fmt.Sprintf("%.1f", p.UE[2]),
				fmt.Sprintf("%.1f", p.UE[3]),
			})
		}
		return fmt.Sprintf("Fig 15 (%s) — per-UE throughput (Mbps; A owns UE1-2, B owns UE3-4)\n", s.Deployment) +
			Table([]string{"t(s)", "UE1", "UE2", "UE3", "UE4"}, rows)
	}
	return render(r.Dedicated) + "\n" + render(r.Shared)
}
