package experiments

import (
	"fmt"

	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/ran"
	"flexric/internal/sm"
	"flexric/internal/xapp"
)

// Fig. 13: the RAT-unaware slicing controller (§6.1.2) on a 106 RB NR
// cell at fixed MCS 20, all UEs saturated by downlink iperf.
//
// (a) isolation: t1 two UEs share equally; t2 a third UE joins and the
// "white" UE's share drops below its 50 % requirement; t3 the xApp
// deploys 50/50 NVS slices with the white UE alone in slice 1; t4 the
// share is raised to 66 %.
// (b) static attribution vs sharing: two slices 66/34, the 34 % slice's
// UE goes idle; without sharing its resources are wasted, with NVS the
// 66 % slice takes them.

// Fig13aPhase is one time instance of Fig. 13a.
type Fig13aPhase struct {
	Label string
	// PerUE maps RNTI → Mbps during the phase.
	PerUE map[uint16]float64
	Total float64
}

// Fig13aResult is the Fig. 13a dataset.
type Fig13aResult struct {
	Phases []Fig13aPhase
}

// fig13Stack brings up cell + agent + slicing controller + xApp.
type fig13Stack struct {
	bs  *BS
	sc  *ctrl.SlicingController
	x   *xapp.SliceXApp
	srv interface{ Close() error }
}

func newFig13Stack() (*fig13Stack, error) {
	srv, addr, err := StartServer(e2ap.SchemeASN)
	if err != nil {
		return nil, err
	}
	sc, err := ctrl.NewSlicingController(srv, sm.SchemeASN, "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	bs, err := NewBS(BSOptions{
		NodeID: 1, RAT: ran.RAT5G, NumRB: 106,
		E2Scheme: e2ap.SchemeASN, SMScheme: sm.SchemeASN,
		Layers: []string{"mac", "slice"}, Controller: addr,
	})
	if err != nil {
		sc.Close()
		srv.Close()
		return nil, err
	}
	if !WaitUntil(waitShort, func() bool { return len(srv.Agents()) == 1 }) {
		bs.Close()
		sc.Close()
		srv.Close()
		return nil, fmt.Errorf("agent connect")
	}
	return &fig13Stack{bs: bs, sc: sc, x: xapp.NewSliceXApp("http://"+sc.Addr(), 0), srv: srv}, nil
}

func (s *fig13Stack) close() {
	s.bs.Close()
	s.sc.Close()
	s.srv.Close()
}

// measurePhase runs ms simulated milliseconds and returns per-UE Mbps.
func measurePhase(bs *BS, rntis []uint16, ms int) map[uint16]float64 {
	start := make(map[uint16]uint64, len(rntis))
	for _, r := range rntis {
		start[r] = bs.Cell.UEDeliveredBits(r)
	}
	bs.RunSim(ms)
	out := make(map[uint16]float64, len(rntis))
	for _, r := range rntis {
		out[r] = Mbps(bs.Cell.UEDeliveredBits(r)-start[r], int64(ms))
	}
	return out
}

// Fig13a reproduces Fig. 13a. phaseMS is the duration of each of the
// four time instances (paper: ~15 s each).
func Fig13a(phaseMS int) (*Fig13aResult, error) {
	st, err := newFig13Stack()
	if err != nil {
		return nil, err
	}
	defer st.close()
	bs, x := st.bs, st.x

	attach := func(rnti uint16) error {
		if _, err := bs.Cell.Attach(rnti, "", "208.95", 20); err != nil {
			return err
		}
		return Saturate(bs.Cell, rnti)
	}
	res := &Fig13aResult{}
	record := func(label string, rntis []uint16, ms int) {
		per := measurePhase(bs, rntis, ms)
		total := 0.0
		for _, v := range per {
			total += v
		}
		res.Phases = append(res.Phases, Fig13aPhase{Label: label, PerUE: per, Total: total})
	}

	// t1: two UEs, no slicing — equal shares.
	if err := attach(1); err != nil {
		return nil, err
	}
	if err := attach(2); err != nil {
		return nil, err
	}
	record("t1/None (2 UEs)", []uint16{1, 2}, phaseMS)

	// t2: third UE joins — the white UE (1) drops to a third.
	if err := attach(3); err != nil {
		return nil, err
	}
	record("t2/None (3 UEs)", []uint16{1, 2, 3}, phaseMS)

	// t3: 50/50 NVS slices; UE 1 alone in slice 1.
	if err := x.Deploy(ctrl.SliceConfigJSON{
		Algo: "nvs",
		Slices: []ctrl.SliceParamJSON{
			{ID: 1, Kind: "capacity", Capacity: 0.5, UESched: "pf"},
			{ID: 2, Kind: "capacity", Capacity: 0.5, UESched: "pf"},
		},
	}); err != nil {
		return nil, err
	}
	for rnti, slice := range map[uint16]uint32{1: 1, 2: 2, 3: 2} {
		if err := x.Associate(rnti, slice); err != nil {
			return nil, err
		}
	}
	record("t3/NVS 50-50", []uint16{1, 2, 3}, phaseMS)

	// t4: 66/34.
	if err := x.Deploy(ctrl.SliceConfigJSON{
		Algo: "nvs",
		Slices: []ctrl.SliceParamJSON{
			{ID: 1, Kind: "capacity", Capacity: 0.66, UESched: "pf"},
			{ID: 2, Kind: "capacity", Capacity: 0.34, UESched: "pf"},
		},
	}); err != nil {
		return nil, err
	}
	record("t4/NVS 66-34", []uint16{1, 2, 3}, phaseMS)
	return res, nil
}

// String renders the Fig. 13a table.
func (r *Fig13aResult) String() string {
	rows := make([][]string, 0, len(r.Phases))
	for _, p := range r.Phases {
		rows = append(rows, []string{
			p.Label,
			fmt.Sprintf("%.1f", p.PerUE[1]),
			fmt.Sprintf("%.1f", p.PerUE[2]),
			fmt.Sprintf("%.1f", p.PerUE[3]),
			fmt.Sprintf("%.1f", p.Total),
		})
	}
	return "Fig 13a — slice isolation on a 106 RB NR cell (Mbps; UE1 is the 'white' UE)\n" +
		Table([]string{"phase", "UE1", "UE2", "UE3", "total"}, rows)
}

// Fig13bPoint is one throughput sample of Fig. 13b.
type Fig13bPoint struct {
	TimeMS int64
	Gray   float64 // 66 % slice (active UE)
	Black  float64 // 34 % slice (on/off UE)
}

// Fig13bResult holds both Fig. 13b series.
type Fig13bResult struct {
	Static  []Fig13bPoint // sharing disabled
	Sharing []Fig13bPoint // NVS sharing
}

// Fig13b reproduces Fig. 13b: two slices 66/34; the 34 % slice's UE only
// transmits in the middle third of the run. Sampled once per second.
func Fig13b(simMS int) (*Fig13bResult, error) {
	run := func(noShare bool) ([]Fig13bPoint, error) {
		st, err := newFig13Stack()
		if err != nil {
			return nil, err
		}
		defer st.close()
		bs, x := st.bs, st.x
		if _, err := bs.Cell.Attach(1, "", "208.95", 20); err != nil {
			return nil, err
		}
		if err := Saturate(bs.Cell, 1); err != nil {
			return nil, err
		}
		if _, err := bs.Cell.Attach(2, "", "208.95", 20); err != nil {
			return nil, err
		}
		// UE 2 transmits only in the middle third.
		if err := bs.Cell.AddTraffic(2, &ran.Saturating{
			Flow:           ran.FiveTuple{DstIP: 2, DstPort: 5001, Proto: ran.ProtoUDP},
			RateBytesPerMS: 4 * ran.CellCapacityBits(106, 20) / 8,
			StartMS:        int64(simMS / 3),
			StopMS:         int64(2 * simMS / 3),
		}); err != nil {
			return nil, err
		}
		if err := x.Deploy(ctrl.SliceConfigJSON{
			Algo: "nvs",
			Slices: []ctrl.SliceParamJSON{
				{ID: 1, Kind: "capacity", Capacity: 0.66, NoSharing: noShare, UESched: "pf"},
				{ID: 2, Kind: "capacity", Capacity: 0.34, NoSharing: noShare, UESched: "pf"},
			},
		}); err != nil {
			return nil, err
		}
		if err := x.Associate(1, 1); err != nil {
			return nil, err
		}
		if err := x.Associate(2, 2); err != nil {
			return nil, err
		}
		var series []Fig13bPoint
		last1, last2 := bs.Cell.UEDeliveredBits(1), bs.Cell.UEDeliveredBits(2)
		const sample = 1000
		for t := 0; t < simMS; t += sample {
			bs.RunSim(sample)
			b1, b2 := bs.Cell.UEDeliveredBits(1), bs.Cell.UEDeliveredBits(2)
			series = append(series, Fig13bPoint{
				TimeMS: bs.Cell.Now(),
				Gray:   Mbps(b1-last1, sample),
				Black:  Mbps(b2-last2, sample),
			})
			last1, last2 = b1, b2
		}
		return series, nil
	}
	static, err := run(true)
	if err != nil {
		return nil, err
	}
	sharing, err := run(false)
	if err != nil {
		return nil, err
	}
	return &Fig13bResult{Static: static, Sharing: sharing}, nil
}

// String renders both Fig. 13b series.
func (r *Fig13bResult) String() string {
	rows := make([][]string, 0, len(r.Static))
	for i := range r.Static {
		sh := Fig13bPoint{}
		if i < len(r.Sharing) {
			sh = r.Sharing[i]
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Static[i].TimeMS/1000),
			fmt.Sprintf("%.1f", r.Static[i].Gray),
			fmt.Sprintf("%.1f", r.Static[i].Black),
			fmt.Sprintf("%.1f", sh.Gray),
			fmt.Sprintf("%.1f", sh.Black),
		})
	}
	return "Fig 13b — static attribution vs NVS sharing (Mbps per second; slice2 active in the middle third)\n" +
		Table([]string{"t(s)", "static gray", "static black", "share gray", "share black"}, rows)
}
