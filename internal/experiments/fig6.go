package experiments

import (
	"fmt"

	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/flexran"
	"flexric/internal/metrics"
	"flexric/internal/ran"
	"flexric/internal/sm"
)

// Fig. 6: "Normalized CPU usage of FlexRIC and FlexRAN" at the agent.
// (a) radio deployments — a 4G 25 RB cell with 3 UEs at MCS 28 and a 5G
// 106 RB cell with 3 UEs at MCS 20, exporting all MAC/RLC/PDCP stats at
// 1 ms; (b) the L2-simulator UE sweep.
//
// CPU is normalized per *simulated* second (the simulator runs faster
// than real time); the baseline column is the user-plane cost without
// any agent, playing the role of the paper's OAI process.

// Fig6aRow is one bar group of Fig. 6a.
type Fig6aRow struct {
	Label       string  // "4G FlexRIC", "4G FlexRAN", "5G FlexRIC"
	AgentCPU    float64 // agent-attributable CPU, % of a core per sim-second
	BaselineCPU float64 // user-plane cost without agent
}

// Fig6aResult is the Fig. 6a dataset.
type Fig6aResult struct {
	Rows  []Fig6aRow
	SimMS int
}

// agentScenario measures CPU per simulated second for a BS workload.
type agentKind int

const (
	agentNone agentKind = iota
	agentFlexRIC
	agentFlexRAN
)

func measureAgentCPU(kind agentKind, rat ran.RAT, numRB, mcs, nUE, simMS int) (float64, error) {
	var bs *BS
	var fr *flexran.Agent
	switch kind {
	case agentFlexRIC:
		srv, addr, err := StartServer(e2ap.SchemeFB)
		if err != nil {
			return 0, err
		}
		defer srv.Close()
		// Raw-storing monitor: the §5.1 controller sink.
		ctrl.NewMonitor(srv, ctrl.MonitorConfig{Scheme: sm.SchemeFB, PeriodMS: 1})
		bs, err = NewBS(BSOptions{
			NodeID: 1, RAT: rat, NumRB: numRB,
			E2Scheme: e2ap.SchemeFB, SMScheme: sm.SchemeFB,
			Layers:     []string{"mac", "rlc", "pdcp"},
			Controller: addr,
		})
		if err != nil {
			return 0, err
		}
		defer bs.Close()
		if !WaitUntil(waitShort, func() bool { return len(srv.Agents()) == 1 }) {
			return 0, fmt.Errorf("agent did not connect")
		}
		// The monitor subscribes on connect; wait for the agent-side
		// subscriptions before measuring.
		if !WaitUntil(waitShort, func() bool {
			n := 0
			for _, fn := range bs.Fns {
				if sf, ok := fn.(*sm.StatsFunction); ok {
					n += sf.Subscriptions()
				}
			}
			return n >= 3
		}) {
			return 0, fmt.Errorf("subscriptions not established")
		}
	case agentFlexRAN:
		fc, addr, err := flexran.NewController("127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		defer fc.Close()
		cell, err := ran.NewCell(ran.PHYConfig{RAT: rat, NumRB: numRB})
		if err != nil {
			return 0, err
		}
		bs = &BS{Cell: cell}
		fr, err = flexran.NewAgent(1, cell, addr)
		if err != nil {
			return 0, err
		}
		defer fr.Close()
		if !WaitUntil(waitShort, func() bool { return len(fc.Agents()) == 1 }) {
			return 0, fmt.Errorf("flexran agent did not register")
		}
		if err := fc.RequestStats(1, 1, flexran.FlagMAC|flexran.FlagRLC|flexran.FlagPDCP); err != nil {
			return 0, err
		}
	default:
		cell, err := ran.NewCell(ran.PHYConfig{RAT: rat, NumRB: numRB})
		if err != nil {
			return 0, err
		}
		bs = &BS{Cell: cell}
	}

	for i := 1; i <= nUE; i++ {
		if _, err := bs.Cell.Attach(uint16(i), "", "208.95", mcs); err != nil {
			return 0, err
		}
		if err := Saturate(bs.Cell, uint16(i)); err != nil {
			return 0, err
		}
	}
	// Warm-up, then measure.
	run := func(ms int) {
		for i := 0; i < ms; i++ {
			bs.Cell.Step(1)
			sm.TickAll(bs.Fns, bs.Cell.Now())
			if fr != nil {
				fr.Tick(bs.Cell.Now())
			}
		}
	}
	run(simMS / 10)
	m := metrics.StartCPU()
	run(simMS)
	return m.CPUPerSimSecond(int64(simMS)), nil
}

// Fig6a reproduces Fig. 6a. simMS is the simulated duration per bar
// (paper-scale ≥ 10 s).
func Fig6a(simMS int) (*Fig6aResult, error) {
	type cfg struct {
		label string
		kind  agentKind
		rat   ran.RAT
		numRB, mcs,
		nUE int
	}
	cfgs := []cfg{
		{"4G (8c) FlexRIC", agentFlexRIC, ran.RAT4G, 25, 28, 3},
		{"4G (8c) FlexRAN", agentFlexRAN, ran.RAT4G, 25, 28, 3},
		{"5G (16c) FlexRIC", agentFlexRIC, ran.RAT5G, 106, 20, 3},
	}
	res := &Fig6aResult{SimMS: simMS}
	for _, c := range cfgs {
		base, err := measureAgentCPU(agentNone, c.rat, c.numRB, c.mcs, c.nUE, simMS)
		if err != nil {
			return nil, fmt.Errorf("fig6a %s baseline: %w", c.label, err)
		}
		with, err := measureAgentCPU(c.kind, c.rat, c.numRB, c.mcs, c.nUE, simMS)
		if err != nil {
			return nil, fmt.Errorf("fig6a %s: %w", c.label, err)
		}
		over := with - base
		if over < 0 {
			over = 0
		}
		res.Rows = append(res.Rows, Fig6aRow{Label: c.label, AgentCPU: over, BaselineCPU: base})
	}
	return res, nil
}

// String renders the Fig. 6a table.
func (r *Fig6aResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Label,
			fmt.Sprintf("%.2f", row.AgentCPU),
			fmt.Sprintf("%.2f", row.BaselineCPU),
		})
	}
	return "Fig 6a — agent CPU overhead, radio deployment (%" +
		" of core per simulated second)\n" +
		Table([]string{"config", "agent", "user plane"}, rows)
}

// Fig6bPoint is one x-position of Fig. 6b.
type Fig6bPoint struct {
	UEs     int
	NoAgent float64
	FlexRIC float64
	FlexRAN float64
}

// Fig6bResult is the Fig. 6b dataset.
type Fig6bResult struct {
	Points []Fig6bPoint
	SimMS  int
}

// Fig6b reproduces Fig. 6b: the L2-simulator UE sweep on a 25 RB cell.
func Fig6b(ueCounts []int, simMS int) (*Fig6bResult, error) {
	if len(ueCounts) == 0 {
		ueCounts = []int{1, 4, 8, 16, 24, 32}
	}
	res := &Fig6bResult{SimMS: simMS}
	for _, n := range ueCounts {
		var p Fig6bPoint
		p.UEs = n
		var err error
		if p.NoAgent, err = measureAgentCPU(agentNone, ran.RAT4G, 25, 28, n, simMS); err != nil {
			return nil, err
		}
		if p.FlexRIC, err = measureAgentCPU(agentFlexRIC, ran.RAT4G, 25, 28, n, simMS); err != nil {
			return nil, err
		}
		if p.FlexRAN, err = measureAgentCPU(agentFlexRAN, ran.RAT4G, 25, 28, n, simMS); err != nil {
			return nil, err
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// String renders the Fig. 6b series.
func (r *Fig6bResult) String() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.UEs),
			fmt.Sprintf("%.2f", p.NoAgent),
			fmt.Sprintf("%.2f", p.FlexRIC),
			fmt.Sprintf("%.2f", p.FlexRAN),
		})
	}
	return "Fig 6b — agent CPU vs connected UEs, L2 simulator (% of core per simulated second)\n" +
		Table([]string{"UEs", "no agent", "FlexRIC", "FlexRAN"}, rows)
}
