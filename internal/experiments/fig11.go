package experiments

import (
	"fmt"
	"sort"
	"time"

	"flexric/internal/broker"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/ran"
	"flexric/internal/sm"
	"flexric/internal/xapp"
)

// Fig. 11: the flow-based traffic control experiment (§6.1.1). A VoIP
// flow (G.711: 172 B every 20 ms) shares a bearer with an iperf3-like
// TCP Cubic flow that starts 5 s later. In transparent mode the Cubic
// flow bloats the RLC buffer and the VoIP packets suffer seconds-scale
// sojourn (Fig. 11a); with the TC xApp's remedy — second queue, 5-tuple
// filter, 5G-BDP pacer — the VoIP flow stays fast (Fig. 11b), and its
// RTT CDF improves by ~4x (Fig. 11c).

// SojournSample is one time point of the sojourn series.
type SojournSample struct {
	TimeMS int64
	// RLCSojournMS is the head-of-line delay in the DRB buffer.
	RLCSojournMS int64
	// TCBacklogBytes is the backlog held at the TC sublayer (xApp case).
	TCBacklogBytes int
}

// Fig11Run is one scenario's outcome.
type Fig11Run struct {
	Mode     string // "transparent" or "xapp"
	Series   []SojournSample
	VoipRTTs []int64 // ms, all samples
	// RemedyAtMS is when the xApp applied its actions (xapp mode).
	RemedyAtMS int64
	CubicLoss  uint64
	Delivered  uint64 // cubic segments delivered
}

// Fig11Result is the full Fig. 11 dataset.
type Fig11Result struct {
	Transparent *Fig11Run
	XApp        *Fig11Run
}

// Fig11 reproduces the experiment. simMS is the scenario duration in
// simulated ms (paper: 60 s; shapes are stable from ~30 s).
func Fig11(simMS int) (*Fig11Result, error) {
	tr, err := fig11Run(false, simMS)
	if err != nil {
		return nil, err
	}
	xa, err := fig11Run(true, simMS)
	if err != nil {
		return nil, err
	}
	return &Fig11Result{Transparent: tr, XApp: xa}, nil
}

func fig11Run(useXApp bool, simMS int) (*Fig11Run, error) {
	run := &Fig11Run{Mode: "transparent"}
	if useXApp {
		run.Mode = "xapp"
	}

	// Full stack: broker + server + TC controller + agent + cell.
	brk, brkAddr, err := broker.NewServer("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer brk.Close()
	srv, e2Addr, err := StartServer(e2ap.SchemeFB)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	tcc, err := ctrl.NewTCController(srv, sm.SchemeFB, brkAddr, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer tcc.Close()

	bs, err := NewBS(BSOptions{
		NodeID: 1, RAT: ran.RAT4G, NumRB: 25,
		E2Scheme: e2ap.SchemeFB, SMScheme: sm.SchemeFB,
		Layers: []string{"rlc", "tc"}, Controller: e2Addr,
	})
	if err != nil {
		return nil, err
	}
	defer bs.Close()
	if !WaitUntil(waitShort, func() bool { return len(srv.Agents()) == 1 }) {
		return nil, fmt.Errorf("agent connect")
	}

	if _, err := bs.Cell.Attach(1, "", "208.95", 28); err != nil {
		return nil, err
	}
	voip := &ran.CBR{
		Flow:          ran.FiveTuple{DstIP: 1, DstPort: 5060, Proto: ran.ProtoUDP},
		Size:          172,
		IntervalMS:    20,
		ReturnDelayMS: 10,
	}
	if err := bs.Cell.AddTraffic(1, voip); err != nil {
		return nil, err
	}
	cubic := &ran.CubicFlow{
		Flow:    ran.FiveTuple{DstIP: 1, DstPort: 5001, Proto: ran.ProtoTCP},
		StartMS: 5000, // the paper starts iperf3 5 s after irtt
	}
	if err := bs.Cell.AddTraffic(1, cubic); err != nil {
		return nil, err
	}

	var tcx *xapp.TCXApp
	xappDone := make(chan error, 1)
	if useXApp {
		tcx, err = xapp.NewTCXApp("http://"+tcc.Addr(), brkAddr, 0, 1)
		if err != nil {
			return nil, err
		}
		tcx.FilterDstPort = 5060
		tcx.FilterProto = uint8(ran.ProtoUDP)
		go func() { xappDone <- tcx.Run() }()
		defer tcx.Close()
	}

	// Slot loop: sample sojourn every 100 ms of simulated time. A tiny
	// pace keeps the socket path (stats → broker → xApp) live.
	for t := 0; t < simMS; t++ {
		bs.Cell.Step(1)
		sm.TickAll(bs.Fns, bs.Cell.Now())
		if t%100 == 0 {
			var s SojournSample
			s.TimeMS = bs.Cell.Now()
			err := bs.Cell.WithUE(1, func(u *ran.UE) error {
				s.RLCSojournMS = u.RLC().OldestSojournMS(s.TimeMS)
				for _, q := range u.TC().Stats().Queues {
					s.TCBacklogBytes += q.BufferBytes
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			run.Series = append(run.Series, s)
			if useXApp && run.RemedyAtMS == 0 && tcx.Applied() {
				run.RemedyAtMS = s.TimeMS
			}
		}
		if useXApp && t%10 == 0 {
			time.Sleep(50 * time.Microsecond)
		}
	}
	run.VoipRTTs = append([]int64(nil), voip.RTTs()...)
	run.Delivered, run.CubicLoss = cubic.Stats()
	return run, nil
}

// CDF returns (value, cumulative fraction) pairs for the run's VoIP RTT
// samples (Fig. 11c).
func (r *Fig11Run) CDF() ([]int64, []float64) {
	vals := append([]int64(nil), r.VoipRTTs...)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	fr := make([]float64, len(vals))
	for i := range vals {
		fr[i] = float64(i+1) / float64(len(vals))
	}
	return vals, fr
}

// RTTPercentile returns the p-th percentile VoIP RTT in ms.
func (r *Fig11Run) RTTPercentile(p float64) int64 {
	vals, _ := r.CDF()
	if len(vals) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(vals)-1))
	return vals[idx]
}

// MaxSojourn returns the worst RLC sojourn observed.
func (r *Fig11Run) MaxSojourn() int64 {
	var m int64
	for _, s := range r.Series {
		if s.RLCSojournMS > m {
			m = s.RLCSojournMS
		}
	}
	return m
}

// String renders the Fig. 11 summary (series statistics + CDF markers).
func (r *Fig11Result) String() string {
	row := func(run *Fig11Run) []string {
		return []string{
			run.Mode,
			fmt.Sprintf("%d", run.MaxSojourn()),
			fmt.Sprintf("%d", run.RTTPercentile(50)),
			fmt.Sprintf("%d", run.RTTPercentile(95)),
			fmt.Sprintf("%d", run.RTTPercentile(99)),
			fmt.Sprintf("%d", run.CubicLoss),
			fmt.Sprintf("%d", run.RemedyAtMS),
		}
	}
	out := "Fig 11 — TC transparent mode vs xApp (sojourn and VoIP RTT, ms)\n" +
		Table([]string{"mode", "max RLC sojourn", "RTT p50", "RTT p95", "RTT p99", "cubic losses", "remedy at"},
			[][]string{row(r.Transparent), row(r.XApp)})
	if p50t, p50x := r.Transparent.RTTPercentile(50), r.XApp.RTTPercentile(50); p50x > 0 {
		out += fmt.Sprintf("VoIP median RTT improvement: %.1fx (paper: ~4x)\n",
			float64(p50t)/float64(p50x))
	}
	return out
}
