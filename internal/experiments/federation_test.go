package experiments

import (
	"testing"
	"time"

	"flexric/internal/e2ap"
	"flexric/internal/sm"
)

// TestFederationDemo is the federation subsystem's acceptance demo
// (`make federation-demo`): a root + 3 shards + 12 agents under both
// codecs. One shard is killed mid-run; its agents must re-home to the
// ring successor, the root's cross-shard streams must resume, and a
// federated windowed query over the pre-kill window must return the
// pre-kill baseline — proof the successor restored the dead shard's
// snapshot.
func TestFederationDemo(t *testing.T) {
	schemes := []struct {
		e2 e2ap.Scheme
		sm sm.Scheme
	}{
		{e2ap.SchemeASN, sm.SchemeASN},
		{e2ap.SchemeFB, sm.SchemeFB},
	}
	for _, sc := range schemes {
		t.Run(string(sc.e2), func(t *testing.T) {
			res, err := FederationDemo(FederationOptions{E2Scheme: sc.e2, SMScheme: sc.sm})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failovers != 1 {
				t.Errorf("failovers = %d, want 1", res.Failovers)
			}
			if res.Orphans == 0 {
				t.Error("victim owned no agents; kill proved nothing")
			}
			if res.IndsAfter <= res.IndsBefore {
				t.Errorf("streams did not resume: %d -> %d", res.IndsBefore, res.IndsAfter)
			}
			if res.PostKillCount != res.BaselineCount {
				t.Errorf("window count changed across failover: %d -> %d", res.BaselineCount, res.PostKillCount)
			}
			if res.P95Buckets > 1 {
				t.Errorf("p95 drifted %d buckets", res.P95Buckets)
			}
			t.Log("\n" + res.String())
		})
	}
}

// TestFedLoad is a smoke run of the scaling sweep at reduced size.
func TestFedLoad(t *testing.T) {
	res, err := FedLoad(FedLoadOptions{
		E2Scheme: e2ap.SchemeFB, SMScheme: sm.SchemeFB,
		Shards: 2, Agents: []int{2}, Duration: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (single + federated)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.IndsPerS <= 0 {
			t.Errorf("%s: no ingest measured", row.Mode)
		}
		if row.Count == 0 {
			t.Errorf("%s: fleet query returned no samples", row.Mode)
		}
		if row.QueryMS <= 0 {
			t.Errorf("%s: no query latency measured", row.Mode)
		}
	}
	t.Log("\n" + res.String())
}
