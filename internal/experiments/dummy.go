package experiments

import (
	"fmt"
	"sync"
	"time"

	"flexric/internal/e2ap"
	"flexric/internal/sm"
	"flexric/internal/transport"
)

// DummyAgent is the §5.3 load generator: a test agent "not connected to
// any base station" that exports the statistics of a 32-UE cell at a
// configurable period.
//
// To measure the *controller's* cost (the paper runs agents and
// controller in separate processes), the dummy agent pre-encodes its
// indication once per subscription and replays the same wire bytes every
// period — its per-message cost is a single send, identical across
// encoding schemes, so CPU differences between runs are attributable to
// the receiving controller.
type DummyAgent struct {
	tc transport.Conn

	mu   sync.Mutex
	wire []byte // pre-encoded indication, nil until subscribed

	stop chan struct{}
	done chan struct{}
	once sync.Once
	sent uint64
}

// StartDummyAgent connects a dummy agent to a controller and replays one
// pre-encoded 32-UE MAC report per period once subscribed.
func StartDummyAgent(nodeID uint64, controller string, e2s e2ap.Scheme, sms sm.Scheme, nUE int, period time.Duration) (*DummyAgent, error) {
	tc, err := transport.Dial(transport.KindSCTPish, controller)
	if err != nil {
		return nil, err
	}
	codec := e2ap.MustCodec(e2s)
	setup := &e2ap.SetupRequest{
		TransactionID: 1,
		NodeID: e2ap.GlobalE2NodeID{
			PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: nodeID,
		},
		RANFunctions: []e2ap.RANFunctionItem{
			{ID: sm.IDMACStats, Revision: 1, OID: "dummy-mac"},
		},
	}
	wire, err := codec.Encode(setup)
	if err != nil {
		tc.Close()
		return nil, err
	}
	if err := tc.Send(wire); err != nil {
		tc.Close()
		return nil, err
	}
	reply, err := tc.Recv()
	if err != nil {
		tc.Close()
		return nil, err
	}
	if pdu, err := codec.Decode(reply); err != nil {
		tc.Close()
		return nil, fmt.Errorf("dummy setup: %w", err)
	} else if _, ok := pdu.(*e2ap.SetupResponse); !ok {
		tc.Close()
		return nil, fmt.Errorf("dummy setup rejected: %s", pdu.MsgType())
	}

	d := &DummyAgent{tc: tc, stop: make(chan struct{}), done: make(chan struct{})}

	// Receive loop: answer subscriptions and pre-encode the indication.
	go func() {
		dec := e2ap.MustCodec(e2s)
		enc := e2ap.MustCodec(e2s)
		for {
			wire, err := tc.Recv()
			if err != nil {
				return
			}
			pdu, err := dec.Decode(wire)
			if err != nil {
				continue
			}
			switch m := pdu.(type) {
			case *e2ap.SubscriptionRequest:
				rep := syntheticMACReport(sms, nUE)
				ind, err := enc.Encode(&e2ap.Indication{
					RequestID:     m.RequestID,
					RANFunctionID: m.RANFunctionID,
					ActionID:      1,
					SN:            1,
					Payload:       rep,
				})
				if err != nil {
					continue
				}
				d.mu.Lock()
				d.wire = append([]byte(nil), ind...)
				d.mu.Unlock()
				resp, err := enc.Encode(&e2ap.SubscriptionResponse{
					RequestID:     m.RequestID,
					RANFunctionID: m.RANFunctionID,
					Admitted:      []uint8{1},
				})
				if err == nil {
					_ = tc.Send(resp)
				}
			case *e2ap.SubscriptionDeleteRequest:
				d.mu.Lock()
				d.wire = nil
				d.mu.Unlock()
				if resp, err := enc.Encode(&e2ap.SubscriptionDeleteResponse{
					RequestID: m.RequestID, RANFunctionID: m.RANFunctionID,
				}); err == nil {
					_ = tc.Send(resp)
				}
			}
		}
	}()

	// Replay loop.
	go func() {
		defer close(d.done)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-t.C:
				d.mu.Lock()
				w := d.wire
				d.mu.Unlock()
				if w != nil {
					if err := tc.Send(w); err != nil {
						return
					}
					d.sent++
				}
			}
		}
	}()
	return d, nil
}

// syntheticMACReport builds the 32-UE report payload.
func syntheticMACReport(sms sm.Scheme, nUE int) []byte {
	rep := &sm.MACReport{CellTimeMS: 1}
	for i := 0; i < nUE; i++ {
		rep.UEs = append(rep.UEs, sm.MACUEEntry{
			RNTI:          uint16(i + 1),
			CQI:           15,
			MCS:           28,
			RBsUsed:       25000,
			TxBits:        16_000_000,
			ThroughputBps: 16e6,
		})
	}
	return sm.EncodeMACReport(sms, rep)
}

// Close stops the replay and disconnects.
func (d *DummyAgent) Close() {
	d.once.Do(func() { close(d.stop) })
	<-d.done
	d.tc.Close()
}
