package experiments

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/obs"
	"flexric/internal/obs/ws"
	"flexric/internal/sm"
	"flexric/internal/telemetry"
	"flexric/internal/tsdb"
)

// StreamLoadResult is the control-room fan-out dataset: N headless
// WebSocket clients consuming live tsdb deltas while dummy agents
// stream indications at 1 ms.
type StreamLoadResult struct {
	Agents   int
	UEs      int
	Clients  int
	Duration time.Duration

	Series    int     // distinct series feeding the hub
	Frames    uint64  // tsdb frames delivered across all clients
	Samples   uint64  // samples delivered across all clients
	Bytes     uint64  // wire bytes delivered (JSON payloads)
	PerSec    float64 // samples/s across all clients
	Dropped   uint64  // frames dropped to slow clients (obs.stream.dropped_frames)
	RingDrops uint64  // ring entries lost producer-side (obs.stream.ring_dropped)

	// FirstFrame is the subscribe-to-first-delta latency per client.
	FirstFrame RTTStats
}

// StreamLoad measures the control-room streaming layer under fan-out:
// `agents` dummy agents report MAC stats at 1 ms into the monitor's
// store, and `clients` concurrent WebSocket consumers subscribe to
// mac.* deltas at a 100 ms flush. The result reports delivered frame,
// sample, and byte throughput plus the layer's own drop telemetry.
// This is the flexric-bench `streamload` subcommand.
func StreamLoad(agents, clients int, d time.Duration) (*StreamLoadResult, error) {
	const ues = 8
	res := &StreamLoadResult{Agents: agents, UEs: ues, Clients: clients, Duration: d}

	store := tsdb.New(tsdb.Config{Capacity: 2048})
	srv, addr, err := StartServer(e2ap.SchemeFB)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	mon := ctrl.NewMonitor(srv, ctrl.MonitorConfig{
		Scheme: sm.SchemeFB, PeriodMS: 1, Layers: ctrl.MonMAC, Decode: true, TSDB: store,
	})
	topo := ctrl.NewTopology(srv, ctrl.TopoWithMonitor(mon))
	o, err := obs.NewServer("127.0.0.1:0",
		obs.WithTSDB(store), obs.WithStream(0),
		obs.WithTopology(func() any { return topo.Snapshot() }))
	if err != nil {
		return nil, err
	}
	defer o.Close()

	var dummies []*DummyAgent
	defer func() {
		for _, da := range dummies {
			da.Close()
		}
	}()
	for i := 0; i < agents; i++ {
		da, err := StartDummyAgent(uint64(i+1), addr, e2ap.SchemeFB, sm.SchemeFB, ues, time.Millisecond)
		if err != nil {
			return nil, err
		}
		dummies = append(dummies, da)
	}
	if !WaitUntil(waitShort, func() bool {
		n, _ := mon.Counters()
		return n > uint64(agents*10) && store.NumSeries() > 0
	}) {
		return nil, fmt.Errorf("indications not reaching the store")
	}

	droppedBase := telemetry.TakeSnapshot().Counter("obs.stream.dropped_frames")
	ringBase := telemetry.TakeSnapshot().Counter("obs.stream.ring_dropped")

	var frames, samples, bytes uint64
	firstLat := make([]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := ws.Dial("ws://"+o.Addr()+"/stream/ws", 5*time.Second)
			if err != nil {
				errs[c] = err
				return
			}
			defer conn.Close()
			if err := conn.WriteText([]byte(`{"op":"subscribe","ch":"tsdb","glob":"mac.*","flush_ms":100}`)); err != nil {
				errs[c] = err
				return
			}
			t0 := time.Now()
			deadline := t0.Add(d)
			gotFirst := false
			for time.Now().Before(deadline) {
				_, payload, err := conn.ReadMessage()
				if err != nil {
					errs[c] = err
					return
				}
				var frame struct {
					Ch     string `json:"ch"`
					Series []struct {
						Name    string       `json:"name"`
						Samples [][2]float64 `json:"samples"`
					} `json:"series"`
				}
				if err := json.Unmarshal(payload, &frame); err != nil {
					errs[c] = fmt.Errorf("bad frame: %w", err)
					return
				}
				if frame.Ch != "tsdb" {
					continue
				}
				if !gotFirst {
					gotFirst = true
					firstLat[c] = time.Since(t0)
				}
				atomic.AddUint64(&frames, 1)
				atomic.AddUint64(&bytes, uint64(len(payload)))
				for _, s := range frame.Series {
					atomic.AddUint64(&samples, uint64(len(s.Samples)))
				}
			}
			if !gotFirst {
				errs[c] = fmt.Errorf("client %d: no tsdb frame in %v", c, d)
				return
			}
			if err := conn.CloseHandshake(ws.CloseNormal, "done", 2*time.Second); err != nil {
				errs[c] = fmt.Errorf("close handshake: %w", err)
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res.Series = store.NumSeries()
	res.Frames = frames
	res.Samples = samples
	res.Bytes = bytes
	res.PerSec = float64(samples) / d.Seconds()
	res.Dropped = telemetry.TakeSnapshot().Counter("obs.stream.dropped_frames") - droppedBase
	res.RingDrops = telemetry.TakeSnapshot().Counter("obs.stream.ring_dropped") - ringBase
	res.FirstFrame = summarize(firstLat)
	return res, nil
}

// String renders the fan-out table.
func (r *StreamLoadResult) String() string {
	rows := [][]string{{
		fmt.Sprintf("%d", r.Clients),
		fmt.Sprintf("%d", r.Agents),
		fmt.Sprintf("%d", r.Series),
		fmt.Sprintf("%d", r.Frames),
		fmt.Sprintf("%d", r.Samples),
		fmt.Sprintf("%.0f", r.PerSec),
		fmt.Sprintf("%.2f", float64(r.Bytes)/(1<<20)),
		fmt.Sprintf("%d", r.FirstFrame.P50.Milliseconds()),
		fmt.Sprintf("%d", r.Dropped),
		fmt.Sprintf("%d", r.RingDrops),
	}}
	return fmt.Sprintf("streamload — WebSocket fan-out of live mac.* deltas, %d agents x %d UEs @1ms, %v\n",
		r.Agents, r.UEs, r.Duration) +
		Table([]string{"clients", "agents", "series", "frames", "samples",
			"samples/s", "MB", "first ms", "dropped", "ringdrop"}, rows)
}
