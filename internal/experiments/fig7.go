package experiments

import (
	"fmt"
	"sort"
	"time"

	"flexric/internal/e2ap"
	"flexric/internal/flexran"
	"flexric/internal/ran"
	"flexric/internal/server"
	"flexric/internal/sm"
)

// Fig. 7: "Comparison of E2AP/E2SM encoding schemes using E2SM-HW ping".
// The iApp pings the agent through a control message; the agent replies
// with an indication (§5.2). Four encoding combinations (E2AP × E2SM)
// plus the FlexRAN echo baseline, at 100 B and 1500 B payloads.

// waitShort bounds setup waits in experiments.
const waitShort = 10 * time.Second

// EncodingCombo names one E2AP/E2SM scheme pair.
type EncodingCombo struct {
	Name string
	E2AP e2ap.Scheme
	E2SM sm.Scheme
}

// Combos returns the four combinations of Fig. 7 in paper order.
func Combos() []EncodingCombo {
	return []EncodingCombo{
		{"ASN/ASN", e2ap.SchemeASN, sm.SchemeASN},
		{"ASN/FB", e2ap.SchemeASN, sm.SchemeFB},
		{"FB/ASN", e2ap.SchemeFB, sm.SchemeASN},
		{"FB/FB", e2ap.SchemeFB, sm.SchemeFB},
	}
}

// RTTStats summarizes a ping run. Min is the noise-robust latency
// signal on loopback (scheduler jitter inflates every percentile above
// it under load).
type RTTStats struct {
	Min, Mean, P50, P95 time.Duration
	N                   int
}

func summarize(samples []time.Duration) RTTStats {
	if len(samples) == 0 {
		return RTTStats{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	return RTTStats{
		Min:  samples[0],
		Mean: sum / time.Duration(len(samples)),
		P50:  samples[len(samples)/2],
		P95:  samples[int(float64(len(samples))*0.95)],
		N:    len(samples),
	}
}

// hwPinger drives HW-E2SM pings against an agent through a server and
// returns RTT samples.
type hwPinger struct {
	srv     *server.Server
	agentID server.AgentID
	scheme  sm.Scheme
	pongs   chan int64 // T0 echoed back
}

func newHWPinger(srv *server.Server, agentID server.AgentID, e2s e2ap.Scheme, sms sm.Scheme) (*hwPinger, error) {
	p := &hwPinger{srv: srv, agentID: agentID, scheme: sms, pongs: make(chan int64, 64)}
	admitted := make(chan struct{}, 1)
	_, err := srv.Subscribe(agentID, sm.IDHelloWorld,
		sm.EncodeTrigger(sms, sm.Trigger{PeriodMS: 1}), nil,
		server.SubscriptionCallbacks{
			OnAdmitted: func(*e2ap.SubscriptionResponse) { admitted <- struct{}{} },
			OnIndication: func(ev server.IndicationEvent) {
				if pong, err := sm.DecodeHWPing(ev.Env.IndicationPayload()); err == nil {
					select {
					case p.pongs <- pong.T0:
					default:
					}
				}
			},
		})
	if err != nil {
		return nil, err
	}
	select {
	case <-admitted:
	case <-time.After(waitShort):
		return nil, fmt.Errorf("hw subscription not admitted")
	}
	return p, nil
}

// ping sends one ping and waits for the echo, returning the RTT.
func (p *hwPinger) ping(seq uint64, payload []byte) (time.Duration, error) {
	t0 := time.Now().UnixNano()
	msg := &sm.HWPing{Seq: seq, T0: t0, Data: payload}
	if err := p.srv.Control(p.agentID, sm.IDHelloWorld, nil, sm.EncodeHWPing(p.scheme, msg), false, nil); err != nil {
		return 0, err
	}
	for {
		select {
		case got := <-p.pongs:
			if got == t0 {
				return time.Duration(time.Now().UnixNano() - t0), nil
			}
			// stale pong from a previous ping: skip
		case <-time.After(waitShort):
			return 0, fmt.Errorf("ping timeout")
		}
	}
}

// Fig7aRow is one bar of Fig. 7a.
type Fig7aRow struct {
	Combo   string
	Payload int
	RTT     RTTStats
}

// Fig7aResult is the Fig. 7a dataset.
type Fig7aResult struct {
	Rows []Fig7aRow
}

// Fig7a reproduces Fig. 7a: HW ping RTT per encoding combination and the
// FlexRAN baseline, n pings per configuration.
func Fig7a(n int, payloads []int) (*Fig7aResult, error) {
	if len(payloads) == 0 {
		payloads = []int{100, 1500}
	}
	res := &Fig7aResult{}
	for _, combo := range Combos() {
		srv, addr, err := StartServer(combo.E2AP)
		if err != nil {
			return nil, err
		}
		bs, err := NewBS(BSOptions{
			NodeID: 1, RAT: ran.RAT4G, NumRB: 25,
			E2Scheme: combo.E2AP, SMScheme: combo.E2SM,
			Layers: []string{"hw"}, Controller: addr,
		})
		if err != nil {
			srv.Close()
			return nil, err
		}
		if !WaitUntil(waitShort, func() bool { return len(srv.Agents()) == 1 }) {
			bs.Close()
			srv.Close()
			return nil, fmt.Errorf("agent connect")
		}
		pinger, err := newHWPinger(srv, srv.Agents()[0].ID, combo.E2AP, combo.E2SM)
		if err != nil {
			bs.Close()
			srv.Close()
			return nil, err
		}
		for _, size := range payloads {
			payload := make([]byte, size)
			var samples []time.Duration
			// Warm-up pings are excluded.
			for i := 0; i < 5; i++ {
				if _, err := pinger.ping(uint64(i), payload); err != nil {
					bs.Close()
					srv.Close()
					return nil, err
				}
			}
			for i := 0; i < n; i++ {
				rtt, err := pinger.ping(uint64(100+i), payload)
				if err != nil {
					bs.Close()
					srv.Close()
					return nil, err
				}
				samples = append(samples, rtt)
			}
			res.Rows = append(res.Rows, Fig7aRow{
				Combo: combo.Name, Payload: size, RTT: summarize(samples),
			})
		}
		bs.Close()
		srv.Close()
	}

	// FlexRAN echo baseline.
	fc, fcAddr, err := flexran.NewController("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer fc.Close()
	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT4G, NumRB: 25})
	if err != nil {
		return nil, err
	}
	fa, err := flexran.NewAgent(1, cell, fcAddr)
	if err != nil {
		return nil, err
	}
	defer fa.Close()
	if !WaitUntil(waitShort, func() bool { return len(fc.Agents()) == 1 }) {
		return nil, fmt.Errorf("flexran agent connect")
	}
	replies := make(chan *flexran.Echo, 64)
	fc.SubscribeEcho(replies)
	for _, size := range payloads {
		payload := make([]byte, size)
		var samples []time.Duration
		for i := 0; i < n+5; i++ {
			t0 := time.Now().UnixNano()
			if err := fc.Echo(1, &flexran.Echo{Seq: uint64(i), T0: t0, Data: payload}); err != nil {
				return nil, err
			}
			select {
			case e := <-replies:
				if e.T0 == t0 && i >= 5 {
					samples = append(samples, time.Duration(time.Now().UnixNano()-t0))
				}
			case <-time.After(waitShort):
				return nil, fmt.Errorf("flexran echo timeout")
			}
		}
		res.Rows = append(res.Rows, Fig7aRow{Combo: "FlexRAN", Payload: size, RTT: summarize(samples)})
	}
	return res, nil
}

// String renders the Fig. 7a table.
func (r *Fig7aResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Combo,
			fmt.Sprintf("%dB", row.Payload),
			fmt.Sprintf("%.0f", float64(row.RTT.Min.Microseconds())),
			fmt.Sprintf("%.0f", float64(row.RTT.Mean.Microseconds())),
			fmt.Sprintf("%.0f", float64(row.RTT.P50.Microseconds())),
			fmt.Sprintf("%.0f", float64(row.RTT.P95.Microseconds())),
			fmt.Sprintf("%d", row.RTT.N),
		})
	}
	return "Fig 7a — E2SM-HW ping round-trip time by encoding (µs)\n" +
		Table([]string{"E2AP/E2SM", "payload", "min", "mean", "p50", "p95", "n"}, rows)
}

// Fig7bRow is one bar of Fig. 7b.
type Fig7bRow struct {
	Combo   string
	Payload int
	// Mbps is the signaling rate for one ping (control + indication)
	// every 1 ms — 4G's TTI, as in the paper.
	Mbps float64
	// BytesPerPing is the on-wire size of one full ping exchange.
	BytesPerPing int
}

// Fig7bResult is the Fig. 7b dataset.
type Fig7bResult struct {
	Rows []Fig7bRow
}

// Fig7b reproduces Fig. 7b: the signaling rate of a 1 kHz ping for every
// encoding combination, plus FlexRAN. Wire sizes are measured by
// encoding the exact messages exchanged.
func Fig7b(payloads []int) (*Fig7bResult, error) {
	if len(payloads) == 0 {
		payloads = []int{100, 1500}
	}
	res := &Fig7bResult{}
	for _, combo := range Combos() {
		codec := e2ap.MustCodec(combo.E2AP)
		for _, size := range payloads {
			ping := &sm.HWPing{Seq: 1, T0: 1, Data: make([]byte, size)}
			inner := sm.EncodeHWPing(combo.E2SM, ping)
			ctl, err := codec.Encode(&e2ap.ControlRequest{
				RequestID:     e2ap.RequestID{Requestor: 2, Instance: 1},
				RANFunctionID: sm.IDHelloWorld,
				Payload:       inner,
			})
			if err != nil {
				return nil, err
			}
			ctlLen := len(ctl)
			ind, err := codec.Encode(&e2ap.Indication{
				RequestID:     e2ap.RequestID{Requestor: 1, Instance: 1},
				RANFunctionID: sm.IDHelloWorld,
				ActionID:      1,
				SN:            1,
				Payload:       inner,
			})
			if err != nil {
				return nil, err
			}
			total := ctlLen + len(ind)
			res.Rows = append(res.Rows, Fig7bRow{
				Combo: combo.Name, Payload: size,
				BytesPerPing: total,
				Mbps:         float64(total) * 8 * 1000 / 1e6,
			})
		}
	}
	for _, size := range payloads {
		echo := &flexran.Echo{Seq: 1, T0: 1, Data: make([]byte, size)}
		req, err := flexran.Encode(flexran.MsgEchoRequest, echo)
		if err != nil {
			return nil, err
		}
		rep, err := flexran.Encode(flexran.MsgEchoReply, echo)
		if err != nil {
			return nil, err
		}
		total := len(req) + len(rep)
		res.Rows = append(res.Rows, Fig7bRow{
			Combo: "FlexRAN", Payload: size,
			BytesPerPing: total,
			Mbps:         float64(total) * 8 * 1000 / 1e6,
		})
	}
	return res, nil
}

// String renders the Fig. 7b table.
func (r *Fig7bResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Combo,
			fmt.Sprintf("%dB", row.Payload),
			fmt.Sprintf("%.2f", row.Mbps),
			fmt.Sprintf("%d", row.BytesPerPing),
		})
	}
	return "Fig 7b — signaling rate at one ping per 1 ms (Mbps)\n" +
		Table([]string{"E2AP/E2SM", "payload", "Mbps", "B/ping"}, rows)
}
