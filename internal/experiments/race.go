//go:build race

package experiments

// raceTimeScale stretches the federation experiments' resilience
// timings under the race detector: its ~10x instrumentation overhead
// makes a 100 ms dead-peer verdict fire spuriously, and every spurious
// flap evicts the flapping agent's tsdb series — which breaks the
// pre-kill-window equality the federation demo asserts.
const raceTimeScale = 5
