package experiments

import (
	"fmt"
	"time"

	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/flexran"
	"flexric/internal/metrics"
	"flexric/internal/sm"
)

// Fig. 8: "CPU usage at the controller" (§5.3). The FlexRIC controller
// is the server library plus a statistics iApp storing incoming messages
// in memory; the comparison is FlexRAN's controller with a 1 ms polling
// application. Dummy test agents export a 32-UE MAC report per
// millisecond.

// Fig8aResult is the Fig. 8a dataset.
type Fig8aResult struct {
	FlexRICCPU float64 // normalized CPU %
	FlexRANCPU float64
	FlexRICMem float64 // MB of controller state
	FlexRANMem float64
	Agents     int
	Duration   time.Duration
}

// Fig8a reproduces Fig. 8a with the given number of dummy agents and
// measurement duration.
func Fig8a(agents int, d time.Duration) (*Fig8aResult, error) {
	res := &Fig8aResult{Agents: agents, Duration: d}

	// --- FlexRIC: server library + raw-storing monitor, FB encoding ---
	{
		srv, addr, err := StartServer(e2ap.SchemeFB)
		if err != nil {
			return nil, err
		}
		mon := ctrl.NewMonitor(srv, ctrl.MonitorConfig{Scheme: sm.SchemeFB, PeriodMS: 1, Layers: ctrl.MonMAC})
		var dummies []*DummyAgent
		memBase := metrics.HeapInUse()
		for i := 0; i < agents; i++ {
			da, err := StartDummyAgent(uint64(i+1), addr, e2ap.SchemeFB, sm.SchemeFB, 32, time.Millisecond)
			if err != nil {
				srv.Close()
				return nil, err
			}
			dummies = append(dummies, da)
		}
		if !WaitUntil(waitShort, func() bool {
			n, _ := mon.Counters()
			return n > uint64(agents)
		}) {
			srv.Close()
			return nil, fmt.Errorf("no indications flowing")
		}
		m := metrics.StartCPU()
		time.Sleep(d)
		res.FlexRICCPU = m.NormalizedPercent()
		res.FlexRICMem = heapSinceMB(memBase)
		for _, da := range dummies {
			da.Close()
		}
		srv.Close()
	}

	// --- FlexRAN: controller + RIB + 1 ms polling application ---
	{
		fc, addr, err := flexran.NewController("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		memBase := metrics.HeapInUse()
		var fdummies []*flexranDummy
		for i := 0; i < agents; i++ {
			fd, err := startFlexRANDummy(uint64(i+1), addr, 32, time.Millisecond)
			if err != nil {
				fc.Close()
				return nil, err
			}
			fdummies = append(fdummies, fd)
		}
		if !WaitUntil(waitShort, func() bool { return len(fc.Agents()) == agents }) {
			fc.Close()
			return nil, fmt.Errorf("flexran agents missing")
		}
		for i := 0; i < agents; i++ {
			if err := fc.RequestStats(uint64(i+1), 1, flexran.FlagMAC); err != nil {
				fc.Close()
				return nil, err
			}
		}
		// FlexRAN applications poll every 1 ms.
		stopPoll := make(chan struct{})
		pollDone := make(chan uint64, 1)
		go func() { pollDone <- fc.PollLoop(time.Millisecond, stopPoll) }()
		time.Sleep(100 * time.Millisecond) // warm-up
		m := metrics.StartCPU()
		time.Sleep(d)
		res.FlexRANCPU = m.NormalizedPercent()
		res.FlexRANMem = heapSinceMB(memBase)
		close(stopPoll)
		<-pollDone
		for _, fd := range fdummies {
			fd.Close()
		}
		fc.Close()
	}
	return res, nil
}

// String renders the Fig. 8a table.
func (r *Fig8aResult) String() string {
	rows := [][]string{
		{"FlexRIC", fmt.Sprintf("%.2f", r.FlexRICCPU), fmt.Sprintf("%.1f", r.FlexRICMem)},
		{"FlexRAN", fmt.Sprintf("%.2f", r.FlexRANCPU), fmt.Sprintf("%.1f", r.FlexRANMem)},
	}
	return fmt.Sprintf("Fig 8a — controller CPU/memory, %d agents x 32 UEs @1ms, %v\n",
		r.Agents, r.Duration) +
		Table([]string{"controller", "CPU %", "state MB"}, rows)
}

// flexranDummy is the FlexRAN-protocol equivalent of DummyAgent.
type flexranDummy struct {
	a    *fakeFlexRANAgent
	stop chan struct{}
	done chan struct{}
}

func startFlexRANDummy(bsID uint64, addr string, nUE int, period time.Duration) (*flexranDummy, error) {
	a, err := newFakeFlexRANAgent(bsID, nUE, addr)
	if err != nil {
		return nil, err
	}
	d := &flexranDummy{a: a, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(d.done)
		t := time.NewTicker(period)
		defer t.Stop()
		now := int64(0)
		for {
			select {
			case <-d.stop:
				return
			case <-t.C:
				now++
				a.tick(now)
			}
		}
	}()
	return d, nil
}

func (d *flexranDummy) Close() {
	close(d.stop)
	<-d.done
	d.a.close()
}

// Fig8bPoint is one x-position of Fig. 8b.
type Fig8bPoint struct {
	Agents int
	CPU    float64
}

// Fig8bResult holds both series of Fig. 8b.
type Fig8bResult struct {
	ASN      []Fig8bPoint
	FB       []Fig8bPoint
	Duration time.Duration
}

// Fig8b reproduces Fig. 8b: controller CPU over the number of dummy
// agents, with ASN.1-style vs FB-style E2AP encoding. The SM payload
// stays FB, isolating the E2AP dispatch cost as in the paper.
func Fig8b(agentCounts []int, d time.Duration) (*Fig8bResult, error) {
	if len(agentCounts) == 0 {
		agentCounts = []int{1, 4, 8, 12, 16, 18}
	}
	res := &Fig8bResult{Duration: d}
	for _, scheme := range []e2ap.Scheme{e2ap.SchemeASN, e2ap.SchemeFB} {
		for _, n := range agentCounts {
			cpu, err := fig8bOne(scheme, n, d)
			if err != nil {
				return nil, fmt.Errorf("fig8b %s/%d: %w", scheme, n, err)
			}
			p := Fig8bPoint{Agents: n, CPU: cpu}
			if scheme == e2ap.SchemeASN {
				res.ASN = append(res.ASN, p)
			} else {
				res.FB = append(res.FB, p)
			}
		}
	}
	return res, nil
}

func fig8bOne(scheme e2ap.Scheme, agents int, d time.Duration) (float64, error) {
	srv, addr, err := StartServer(scheme)
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	mon := ctrl.NewMonitor(srv, ctrl.MonitorConfig{Scheme: sm.SchemeFB, PeriodMS: 1, Layers: ctrl.MonMAC})
	var dummies []*DummyAgent
	defer func() {
		for _, da := range dummies {
			da.Close()
		}
	}()
	for i := 0; i < agents; i++ {
		da, err := StartDummyAgent(uint64(i+1), addr, scheme, sm.SchemeFB, 32, time.Millisecond)
		if err != nil {
			return 0, err
		}
		dummies = append(dummies, da)
	}
	if !WaitUntil(waitShort, func() bool {
		n, _ := mon.Counters()
		return n > uint64(agents*10)
	}) {
		return 0, fmt.Errorf("indications not flowing")
	}
	m := metrics.StartCPU()
	time.Sleep(d)
	return m.NormalizedPercent(), nil
}

// String renders the Fig. 8b series.
func (r *Fig8bResult) String() string {
	rows := make([][]string, 0, len(r.ASN))
	for i := range r.ASN {
		fb := ""
		if i < len(r.FB) {
			fb = fmt.Sprintf("%.2f", r.FB[i].CPU)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.ASN[i].Agents),
			fmt.Sprintf("%.2f", r.ASN[i].CPU),
			fb,
		})
	}
	return fmt.Sprintf("Fig 8b — controller CPU vs dummy agents (32 UEs @1ms each), %v window\n", r.Duration) +
		Table([]string{"agents", "ASN.1 CPU %", "FB CPU %"}, rows)
}
