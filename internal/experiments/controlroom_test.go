package experiments

import (
	"encoding/json"
	"testing"
	"time"

	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/obs"
	"flexric/internal/obs/ws"
	"flexric/internal/sm"
	"flexric/internal/trace"
	"flexric/internal/tsdb"
)

// TestControlRoomDemo is the control room's acceptance demo (`make
// controlroom-demo`): under both codecs, a headless WebSocket client
// dials the live /stream/ws endpoint of a running monitoring loop,
// subscribes to mac.* deltas (with backfill) plus the topology and
// span channels, receives a sustained stream of batched delta frames,
// and disconnects with a clean RFC 6455 close handshake.
func TestControlRoomDemo(t *testing.T) {
	const wantDeltaFrames = 5
	schemes := []struct {
		e2 e2ap.Scheme
		sm sm.Scheme
	}{
		{e2ap.SchemeASN, sm.SchemeASN},
		{e2ap.SchemeFB, sm.SchemeFB},
	}
	for _, sc := range schemes {
		t.Run(string(sc.e2), func(t *testing.T) {
			if trace.Enabled {
				trace.SetSampleEvery(1)
				defer trace.SetSampleEvery(0)
			}
			store := tsdb.New(tsdb.Config{Capacity: 1024})
			srv, addr, err := StartServer(sc.e2)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			mon := ctrl.NewMonitor(srv, ctrl.MonitorConfig{
				Scheme: sc.sm, PeriodMS: 1, Layers: ctrl.MonMAC, Decode: true, TSDB: store,
			})
			topo := ctrl.NewTopology(srv, ctrl.TopoWithMonitor(mon))
			o, err := obs.NewServer("127.0.0.1:0",
				obs.WithTSDB(store), obs.WithStream(10),
				obs.WithTopology(func() any { return topo.Snapshot() }))
			if err != nil {
				t.Fatal(err)
			}
			defer o.Close()
			da, err := StartDummyAgent(1, addr, sc.e2, sc.sm, 4, time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			defer da.Close()
			if !WaitUntil(waitShort, func() bool {
				n, _ := mon.Counters()
				return n > 10 && store.NumSeries() > 0
			}) {
				t.Fatal("indications not reaching the store")
			}

			// The dummy agent replays pre-encoded wire bytes and never
			// starts spans, so drive the span channel with a small
			// control-loop-shaped trace generator.
			stopSpans := make(chan struct{})
			defer close(stopSpans)
			if trace.Enabled {
				go func() {
					tick := time.NewTicker(5 * time.Millisecond)
					defer tick.Stop()
					for {
						select {
						case <-stopSpans:
							return
						case <-tick.C:
						}
						sp := trace.StartRoot("demo.loop")
						child := trace.StartChild(sp.Context(), "demo.work")
						child.End()
						sp.End()
					}
				}()
			}

			conn, err := ws.Dial("ws://"+o.Addr()+"/stream/ws", 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()

			for _, req := range []string{
				`{"op":"subscribe","ch":"tsdb","glob":"mac.*","window_ms":2000,"flush_ms":50}`,
				`{"op":"subscribe","ch":"topology","flush_ms":50}`,
				`{"op":"subscribe","ch":"spans","flush_ms":50}`,
			} {
				if err := conn.WriteText([]byte(req)); err != nil {
					t.Fatal(err)
				}
			}

			var (
				hello, backfill, topoOK, spansOK bool
				deltaFrames, samples             int
			)
			deadline := time.Now().Add(waitShort)
			done := func() bool {
				return deltaFrames >= wantDeltaFrames && backfill && topoOK &&
					(spansOK || !trace.Enabled)
			}
			for time.Now().Before(deadline) && !done() {
				_, payload, err := conn.ReadMessage()
				if err != nil {
					t.Fatalf("read: %v", err)
				}
				var frame struct {
					Ch       string `json:"ch"`
					Backfill bool   `json:"backfill"`
					Error    string `json:"error"`
					Series   []struct {
						Name    string       `json:"name"`
						Samples [][2]float64 `json:"samples"`
					} `json:"series"`
					Spans []struct {
						Name string `json:"name"`
					} `json:"spans"`
					Topology struct {
						Agents []struct {
							Functions []string `json:"functions"`
						} `json:"agents"`
					} `json:"topology"`
				}
				if err := json.Unmarshal(payload, &frame); err != nil {
					t.Fatalf("bad frame %s: %v", payload, err)
				}
				switch frame.Ch {
				case "hello":
					hello = true
				case "error":
					t.Fatalf("protocol error frame: %s", frame.Error)
				case "tsdb":
					for _, s := range frame.Series {
						if !globLikeMAC(s.Name) {
							t.Fatalf("series %q leaked past the mac.* glob", s.Name)
						}
						samples += len(s.Samples)
					}
					if frame.Backfill {
						backfill = true
					} else if len(frame.Series) > 0 {
						deltaFrames++
					}
				case "topology":
					if len(frame.Topology.Agents) == 1 {
						topoOK = true
					}
				case "spans":
					if len(frame.Spans) > 0 {
						spansOK = true
					}
				}
			}
			if !hello {
				t.Error("no hello frame")
			}
			if !backfill {
				t.Error("no backfill frame despite window_ms")
			}
			if deltaFrames < wantDeltaFrames {
				t.Errorf("delta frames = %d, want >= %d", deltaFrames, wantDeltaFrames)
			}
			if samples == 0 {
				t.Error("no samples delivered")
			}
			if !topoOK {
				t.Error("no topology frame with the connected agent")
			}
			if trace.Enabled && !spansOK {
				t.Error("no span frame despite sampling every trace")
			}

			// Clean close: the server must echo our close frame.
			if err := conn.CloseHandshake(ws.CloseNormal, "demo done", 2*time.Second); err != nil {
				t.Fatalf("close handshake: %v", err)
			}
			if !WaitUntil(waitShort, func() bool { return o.Hub().NumClients() == 0 }) {
				t.Error("hub did not release the client after close")
			}
			t.Logf("%s: %d delta frames, %d samples, backfill=%v topo=%v spans=%v",
				sc.e2, deltaFrames, samples, backfill, topoOK, spansOK)
		})
	}
}

// globLikeMAC mirrors the demo's mac.* subscription for leak checks.
func globLikeMAC(name string) bool {
	return len(name) >= 4 && name[:4] == "mac."
}

// TestStreamLoadSmall smoke-tests the streamload experiment at reduced
// scale so the bench subcommand's path stays covered by `go test`.
func TestStreamLoadSmall(t *testing.T) {
	res, err := StreamLoad(2, 3, 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames == 0 || res.Samples == 0 {
		t.Fatalf("no data delivered: %+v", res)
	}
	t.Log("\n" + res.String())
}
