package broker

import (
	"bytes"

	"sync"
	"testing"
	"time"
)

func startBroker(t *testing.T) string {
	t.Helper()
	s, addr, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return addr
}

func TestPubSub(t *testing.T) {
	addr := startBroker(t)
	sub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	ch, err := sub.Subscribe("stats.rlc", 16)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // allow SUBSCRIBE to land
	if err := pub.Publish("stats.rlc", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-ch:
		if m.Channel != "stats.rlc" || !bytes.Equal(m.Payload, []byte("hello")) {
			t.Fatalf("message %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestChannelIsolation(t *testing.T) {
	addr := startBroker(t)
	sub, _ := Dial(addr)
	defer sub.Close()
	pub, _ := Dial(addr)
	defer pub.Close()
	chA, _ := sub.Subscribe("a", 4)
	time.Sleep(20 * time.Millisecond)
	_ = pub.Publish("b", []byte("x"))
	_ = pub.Publish("a", []byte("y"))
	select {
	case m := <-chA:
		if string(m.Payload) != "y" {
			t.Fatalf("leaked cross-channel message: %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestFanOut(t *testing.T) {
	addr := startBroker(t)
	const n = 5
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ch, err := c.Subscribe("fan", 4)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case <-ch:
			case <-time.After(5 * time.Second):
				t.Errorf("subscriber %d starved", i)
			}
		}(i)
	}
	time.Sleep(30 * time.Millisecond)
	pub, _ := Dial(addr)
	defer pub.Close()
	if err := pub.Publish("fan", []byte("all")); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestSlowSubscriberDrops(t *testing.T) {
	addr := startBroker(t)
	sub, _ := Dial(addr)
	defer sub.Close()
	ch, _ := sub.Subscribe("flood", 1)
	time.Sleep(20 * time.Millisecond)
	pub, _ := Dial(addr)
	defer pub.Close()
	for i := 0; i < 100; i++ {
		if err := pub.Publish("flood", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	// The channel holds at most its depth; everything else was dropped
	// without blocking the broker.
	if len(ch) > 1 {
		t.Fatalf("buffered %d, want <=1", len(ch))
	}
}

func TestSubscriberCloseCleansUp(t *testing.T) {
	addr := startBroker(t)
	sub, _ := Dial(addr)
	ch, _ := sub.Subscribe("c", 4)
	time.Sleep(20 * time.Millisecond)
	sub.Close()
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("expected closed channel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("channel not closed on client close")
	}
	// Publishing afterwards must not fail the broker.
	pub, _ := Dial(addr)
	defer pub.Close()
	if err := pub.Publish("c", []byte("after")); err != nil {
		t.Fatal(err)
	}
}

func TestSubscribeAfterClose(t *testing.T) {
	addr := startBroker(t)
	c, _ := Dial(addr)
	c.Close()
	if _, err := c.Subscribe("x", 1); err == nil {
		t.Fatal("subscribe on closed client must fail")
	}
}

func BenchmarkPublishDeliver(b *testing.B) {
	s, addr, err := NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	sub, _ := Dial(addr)
	defer sub.Close()
	ch, _ := sub.Subscribe("bench", 1024)
	time.Sleep(20 * time.Millisecond)
	pub, _ := Dial(addr)
	defer pub.Close()
	payload := bytes.Repeat([]byte{0x7A}, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Publish("bench", payload); err != nil {
			b.Fatal(err)
		}
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			b.Fatal("delivery stalled")
		}
	}
}
