package broker

import (
	"flexric/internal/telemetry"
)

// Telemetry: the northbound leg of the pipeline. The paper's TC
// specialization rides stats from an iApp to the xApp over the broker
// (Table 3); these instruments make the fan-out cost and loss behaviour
// of that leg visible.
//
//	broker.published          publish frames accepted (counter)
//	broker.delivered          frames forwarded to subscribers (counter)
//	broker.fanout_latency     one publish → all subscriber sockets (histogram)
//	broker.client.delivered   messages handed to local subscribers (counter)
//	broker.client.dropped     slow-subscriber drops, Redis-style (counter)
var brokerTel = struct {
	published     *telemetry.Counter
	delivered     *telemetry.Counter
	fanoutLat     *telemetry.Histogram
	clientDeliver *telemetry.Counter
	clientDropped *telemetry.Counter
}{
	published:     telemetry.NewCounter("broker.published"),
	delivered:     telemetry.NewCounter("broker.delivered"),
	fanoutLat:     telemetry.NewHistogram("broker.fanout_latency"),
	clientDeliver: telemetry.NewCounter("broker.client.delivered"),
	clientDropped: telemetry.NewCounter("broker.client.dropped"),
}
