// Package broker implements a Redis-like publish/subscribe message
// broker. The paper's traffic-control specialization uses Redis as the
// northbound message broker between the stats-forwarding iApp and the TC
// xApp (Table 3); this package provides the same decoupling on the
// stdlib: a broker server speaking a small framed protocol, and a client
// with Publish and Subscribe.
package broker

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"flexric/internal/telemetry"
	"flexric/internal/trace"
	"flexric/internal/transport"
)

// ErrClosed reports use of a closed broker or client.
var ErrClosed = errors.New("broker: closed")

// Frame verbs.
const (
	verbSubscribe   = 1
	verbUnsubscribe = 2
	verbPublish     = 3
	verbMessage     = 4 // broker → subscriber delivery
	// Traced variants carry a 16-byte trace context (TraceID, SpanID,
	// big-endian) between the channel name and the payload, so a trace
	// started in the E2 path survives the broker hop to xApps.
	verbPublishT = 5
	verbMessageT = 6
)

// traceCtxSize is the wire size of a trace context on traced frames.
const traceCtxSize = 16

// encodeFrame builds [verb][u16 channel len][channel][payload].
func encodeFrame(verb byte, channel string, payload []byte) []byte {
	buf := make([]byte, 3+len(channel)+len(payload))
	buf[0] = verb
	binary.BigEndian.PutUint16(buf[1:], uint16(len(channel)))
	copy(buf[3:], channel)
	copy(buf[3+len(channel):], payload)
	return buf
}

// encodeTracedFrame is encodeFrame with the trace context spliced in
// front of the payload.
func encodeTracedFrame(verb byte, channel string, tc trace.Context, payload []byte) []byte {
	buf := make([]byte, 3+len(channel)+traceCtxSize+len(payload))
	buf[0] = verb
	binary.BigEndian.PutUint16(buf[1:], uint16(len(channel)))
	copy(buf[3:], channel)
	off := 3 + len(channel)
	binary.BigEndian.PutUint64(buf[off:], tc.TraceID)
	binary.BigEndian.PutUint64(buf[off+8:], tc.SpanID)
	copy(buf[off+traceCtxSize:], payload)
	return buf
}

// splitTraced separates the trace context from a traced frame's payload.
func splitTraced(payload []byte) (trace.Context, []byte, error) {
	if len(payload) < traceCtxSize {
		return trace.Context{}, nil, fmt.Errorf("broker: short traced frame")
	}
	tc := trace.Context{
		TraceID: binary.BigEndian.Uint64(payload),
		SpanID:  binary.BigEndian.Uint64(payload[8:]),
	}
	return tc, payload[traceCtxSize:], nil
}

func decodeFrame(b []byte) (verb byte, channel string, payload []byte, err error) {
	if len(b) < 3 {
		return 0, "", nil, fmt.Errorf("broker: short frame")
	}
	n := int(binary.BigEndian.Uint16(b[1:]))
	if 3+n > len(b) {
		return 0, "", nil, fmt.Errorf("broker: bad channel length")
	}
	return b[0], string(b[3 : 3+n]), b[3+n:], nil
}

// Server is the broker process.
type Server struct {
	lis transport.Listener

	mu   sync.Mutex
	subs map[string]map[*serverConn]bool

	wg sync.WaitGroup
}

type serverConn struct {
	tc     transport.Conn
	sendMu sync.Mutex
}

// NewServer starts a broker on addr, returning it and its bound address.
func NewServer(addr string) (*Server, string, error) {
	lis, err := transport.Listen(transport.KindSCTPish, addr)
	if err != nil {
		return nil, "", err
	}
	s := &Server{lis: lis, subs: make(map[string]map[*serverConn]bool)}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			tc, err := lis.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serve(&serverConn{tc: tc})
			}()
		}
	}()
	return s, lis.Addr(), nil
}

// Close stops the broker.
func (s *Server) Close() error {
	s.lis.Close()
	s.mu.Lock()
	seen := make(map[*serverConn]bool)
	for _, conns := range s.subs {
		for c := range conns {
			seen[c] = true
		}
	}
	s.mu.Unlock()
	for c := range seen {
		c.tc.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) serve(c *serverConn) {
	defer func() {
		s.mu.Lock()
		for _, conns := range s.subs {
			delete(conns, c)
		}
		s.mu.Unlock()
		c.tc.Close()
	}()
	for {
		wire, err := c.tc.Recv()
		if err != nil {
			return
		}
		verb, channel, payload, err := decodeFrame(wire)
		if err != nil {
			continue
		}
		switch verb {
		case verbSubscribe:
			s.mu.Lock()
			if s.subs[channel] == nil {
				s.subs[channel] = make(map[*serverConn]bool)
			}
			s.subs[channel][c] = true
			s.mu.Unlock()
		case verbUnsubscribe:
			s.mu.Lock()
			delete(s.subs[channel], c)
			s.mu.Unlock()
		case verbPublish, verbPublishT:
			var t0 time.Time
			if telemetry.Enabled {
				t0 = time.Now()
				brokerTel.published.Inc()
			}
			var sp trace.Span
			var out []byte
			if verb == verbPublishT {
				tc, rest, err := splitTraced(payload)
				if err != nil {
					continue
				}
				// Fan-out span, child of the publisher's broker.publish;
				// its context rides the delivery so subscribers can link
				// further spans under it.
				sp = trace.StartChild(tc, "broker.fanout")
				out = encodeTracedFrame(verbMessageT, channel, sp.Context(), rest)
			} else {
				out = encodeFrame(verbMessage, channel, payload)
			}
			s.mu.Lock()
			dsts := make([]*serverConn, 0, len(s.subs[channel]))
			for dst := range s.subs[channel] {
				dsts = append(dsts, dst)
			}
			s.mu.Unlock()
			for _, dst := range dsts {
				dst.sendMu.Lock()
				err := dst.tc.Send(out)
				dst.sendMu.Unlock()
				if telemetry.Enabled && err == nil {
					brokerTel.delivered.Inc()
				}
			}
			sp.End()
			if telemetry.Enabled {
				brokerTel.fanoutLat.Observe(time.Since(t0))
			}
		}
	}
}

// Message is one delivered publication.
type Message struct {
	Channel string
	Payload []byte
	// Trace is the broker fan-out context when the publication was
	// traced (PublishTraced); zero otherwise.
	Trace trace.Context
}

// Client is a broker client. Safe for concurrent use.
type Client struct {
	tc     transport.Conn
	sendMu sync.Mutex

	mu   sync.Mutex
	subs map[string][]chan Message

	closed bool
	done   chan struct{}
}

// Dial connects a client to a broker.
func Dial(addr string) (*Client, error) {
	tc, err := transport.Dial(transport.KindSCTPish, addr)
	if err != nil {
		return nil, err
	}
	c := &Client{tc: tc, subs: make(map[string][]chan Message), done: make(chan struct{})}
	go c.recvLoop()
	return c, nil
}

// Close disconnects the client; subscription channels are closed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	return c.tc.Close()
}

func (c *Client) recvLoop() {
	for {
		wire, err := c.tc.Recv()
		if err != nil {
			c.mu.Lock()
			for _, chans := range c.subs {
				for _, ch := range chans {
					close(ch)
				}
			}
			c.subs = make(map[string][]chan Message)
			c.mu.Unlock()
			return
		}
		verb, channel, payload, err := decodeFrame(wire)
		if err != nil {
			continue
		}
		var tc trace.Context
		if verb == verbMessageT {
			if tc, payload, err = splitTraced(payload); err != nil {
				continue
			}
		} else if verb != verbMessage {
			continue
		}
		msg := Message{Channel: channel, Payload: append([]byte(nil), payload...), Trace: tc}
		c.mu.Lock()
		chans := append([]chan Message(nil), c.subs[channel]...)
		c.mu.Unlock()
		for _, ch := range chans {
			select {
			case ch <- msg:
				brokerTel.clientDeliver.Inc()
			default: // slow subscriber: drop, like Redis pub/sub
				brokerTel.clientDropped.Inc()
			}
		}
	}
}

// Publish sends payload to every subscriber of channel.
func (c *Client) Publish(channel string, payload []byte) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return c.tc.Send(encodeFrame(verbPublish, channel, payload))
}

// PublishTraced is Publish linked into a trace: it records a
// "broker.publish" span under tc and carries the context to the broker,
// which records its fan-out and forwards the context to subscribers.
// With an invalid context it degrades to plain Publish, so call sites
// need no branching.
func (c *Client) PublishTraced(channel string, payload []byte, tc trace.Context) error {
	if !trace.Enabled || !tc.Valid() {
		return c.Publish(channel, payload)
	}
	sp := trace.StartChild(tc, "broker.publish")
	c.sendMu.Lock()
	err := c.tc.Send(encodeTracedFrame(verbPublishT, channel, sp.Context(), payload))
	c.sendMu.Unlock()
	sp.End()
	return err
}

// Subscribe registers for a channel, returning a buffered delivery
// channel. Messages overflowing the buffer are dropped (Redis pub/sub
// semantics).
func (c *Client) Subscribe(channel string, depth int) (<-chan Message, error) {
	if depth <= 0 {
		depth = 256
	}
	ch := make(chan Message, depth)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	first := len(c.subs[channel]) == 0
	c.subs[channel] = append(c.subs[channel], ch)
	c.mu.Unlock()
	if first {
		c.sendMu.Lock()
		err := c.tc.Send(encodeFrame(verbSubscribe, channel, nil))
		c.sendMu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return ch, nil
}
