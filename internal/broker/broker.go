// Package broker implements a Redis-like publish/subscribe message
// broker. The paper's traffic-control specialization uses Redis as the
// northbound message broker between the stats-forwarding iApp and the TC
// xApp (Table 3); this package provides the same decoupling on the
// stdlib: a broker server speaking a small framed protocol, and a client
// with Publish and Subscribe.
package broker

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"flexric/internal/telemetry"
	"flexric/internal/trace"
	"flexric/internal/transport"
)

// ErrClosed reports use of a closed broker or client.
var ErrClosed = errors.New("broker: closed")

// Frame verbs.
const (
	verbSubscribe   = 1
	verbUnsubscribe = 2
	verbPublish     = 3
	verbMessage     = 4 // broker → subscriber delivery
	// Traced variants carry a 16-byte trace context (TraceID, SpanID,
	// big-endian) between the channel name and the payload, so a trace
	// started in the E2 path survives the broker hop to xApps.
	verbPublishT = 5
	verbMessageT = 6
)

// traceCtxSize is the wire size of a trace context on traced frames.
const traceCtxSize = 16

// appendFrame appends [verb][u16 channel len][channel][payload] to dst
// (which may be nil) and returns the extended slice — the append-style
// builder that lets publish paths reuse one wire buffer per client.
func appendFrame(dst []byte, verb byte, channel string, payload []byte) []byte {
	dst = append(dst, verb, byte(len(channel)>>8), byte(len(channel)))
	dst = append(dst, channel...)
	return append(dst, payload...)
}

// appendTracedFrame is appendFrame with the trace context spliced in
// front of the payload.
func appendTracedFrame(dst []byte, verb byte, channel string, tc trace.Context, payload []byte) []byte {
	dst = append(dst, verb, byte(len(channel)>>8), byte(len(channel)))
	dst = append(dst, channel...)
	var ctx [traceCtxSize]byte
	binary.BigEndian.PutUint64(ctx[:], tc.TraceID)
	binary.BigEndian.PutUint64(ctx[8:], tc.SpanID)
	dst = append(dst, ctx[:]...)
	return append(dst, payload...)
}

// encodeFrame builds a frame in a fresh buffer.
func encodeFrame(verb byte, channel string, payload []byte) []byte {
	return appendFrame(nil, verb, channel, payload)
}

// appendFrameBytes / appendTracedFrameBytes duplicate the builders for a
// channel still in wire-view ([]byte) form: the broker's fan-out path
// would otherwise pay a string conversion allocation per publish.
func appendFrameBytes(dst []byte, verb byte, channel, payload []byte) []byte {
	dst = append(dst, verb, byte(len(channel)>>8), byte(len(channel)))
	dst = append(dst, channel...)
	return append(dst, payload...)
}

func appendTracedFrameBytes(dst []byte, verb byte, channel []byte, tc trace.Context, payload []byte) []byte {
	dst = append(dst, verb, byte(len(channel)>>8), byte(len(channel)))
	dst = append(dst, channel...)
	var ctx [traceCtxSize]byte
	binary.BigEndian.PutUint64(ctx[:], tc.TraceID)
	binary.BigEndian.PutUint64(ctx[8:], tc.SpanID)
	dst = append(dst, ctx[:]...)
	return append(dst, payload...)
}

// splitTraced separates the trace context from a traced frame's payload.
func splitTraced(payload []byte) (trace.Context, []byte, error) {
	if len(payload) < traceCtxSize {
		return trace.Context{}, nil, fmt.Errorf("broker: short traced frame")
	}
	tc := trace.Context{
		TraceID: binary.BigEndian.Uint64(payload),
		SpanID:  binary.BigEndian.Uint64(payload[8:]),
	}
	return tc, payload[traceCtxSize:], nil
}

// decodeFrame splits a frame into views of b: the channel stays a byte
// slice so the per-message hot paths never allocate a string — map
// lookups via m[string(channel)] compile to allocation-free probes, and
// only a first-time Subscribe materializes the name.
func decodeFrame(b []byte) (verb byte, channel, payload []byte, err error) {
	if len(b) < 3 {
		return 0, nil, nil, fmt.Errorf("broker: short frame")
	}
	n := int(binary.BigEndian.Uint16(b[1:]))
	if 3+n > len(b) {
		return 0, nil, nil, fmt.Errorf("broker: bad channel length")
	}
	return b[0], b[3 : 3+n], b[3+n:], nil
}

// Server is the broker process.
type Server struct {
	lis transport.Listener

	mu   sync.Mutex
	subs map[string]map[*serverConn]bool

	wg sync.WaitGroup
}

type serverConn struct {
	tc     transport.Conn
	sendMu sync.Mutex
}

// NewServer starts a broker on addr, returning it and its bound address.
func NewServer(addr string) (*Server, string, error) {
	lis, err := transport.Listen(transport.KindSCTPish, addr)
	if err != nil {
		return nil, "", err
	}
	s := &Server{lis: lis, subs: make(map[string]map[*serverConn]bool)}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			tc, err := lis.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serve(&serverConn{tc: tc})
			}()
		}
	}()
	return s, lis.Addr(), nil
}

// Close stops the broker.
func (s *Server) Close() error {
	s.lis.Close()
	s.mu.Lock()
	seen := make(map[*serverConn]bool)
	for _, conns := range s.subs {
		for c := range conns {
			seen[c] = true
		}
	}
	s.mu.Unlock()
	for c := range seen {
		c.tc.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) serve(c *serverConn) {
	defer func() {
		s.mu.Lock()
		for _, conns := range s.subs {
			delete(conns, c)
		}
		s.mu.Unlock()
		c.tc.Close()
	}()
	// Receive frames through the recycled-buffer path and build delivery
	// frames in a per-connection scratch: a steady publish stream is
	// served without allocating. dsts is snapshotted under the lock so
	// slow subscriber sends don't serialize subscription changes.
	var buf, out []byte
	var dsts []*serverConn
	for {
		wire, err := transport.RecvBuf(c.tc, buf)
		if err != nil {
			return
		}
		buf = wire
		verb, channel, payload, err := decodeFrame(wire)
		if err != nil {
			continue
		}
		switch verb {
		case verbSubscribe:
			s.mu.Lock()
			if s.subs[string(channel)] == nil {
				s.subs[string(channel)] = make(map[*serverConn]bool)
			}
			s.subs[string(channel)][c] = true
			s.mu.Unlock()
		case verbUnsubscribe:
			s.mu.Lock()
			delete(s.subs[string(channel)], c)
			s.mu.Unlock()
		case verbPublish, verbPublishT:
			var t0 time.Time
			if telemetry.Enabled {
				t0 = time.Now()
				brokerTel.published.Inc()
			}
			var sp trace.Span
			if verb == verbPublishT {
				tc, rest, err := splitTraced(payload)
				if err != nil {
					continue
				}
				// Fan-out span, child of the publisher's broker.publish;
				// its context rides the delivery so subscribers can link
				// further spans under it.
				sp = trace.StartChild(tc, "broker.fanout")
				out = appendTracedFrameBytes(out[:0], verbMessageT, channel, sp.Context(), rest)
			} else {
				out = appendFrameBytes(out[:0], verbMessage, channel, payload)
			}
			s.mu.Lock()
			dsts = dsts[:0]
			for dst := range s.subs[string(channel)] {
				dsts = append(dsts, dst)
			}
			s.mu.Unlock()
			for _, dst := range dsts {
				dst.sendMu.Lock()
				err := dst.tc.Send(out)
				dst.sendMu.Unlock()
				if telemetry.Enabled && err == nil {
					brokerTel.delivered.Inc()
				}
			}
			sp.End()
			if telemetry.Enabled {
				brokerTel.fanoutLat.Observe(time.Since(t0))
			}
		}
	}
}

// Message is one delivered publication.
type Message struct {
	Channel string
	Payload []byte
	// Trace is the broker fan-out context when the publication was
	// traced (PublishTraced); zero otherwise.
	Trace trace.Context
}

// clientSub is one channel's local subscription state. name is the
// canonical channel-name string, allocated once at Subscribe time and
// shared by every delivered Message, so deliveries never re-materialize
// the name from the wire.
type clientSub struct {
	name  string
	chans []chan Message
}

// Client is a broker client. Safe for concurrent use.
type Client struct {
	tc     transport.Conn
	sendMu sync.Mutex
	// pub is the publish frame scratch, reused under sendMu.
	pub []byte

	mu   sync.Mutex
	subs map[string]*clientSub

	closed bool
	done   chan struct{}
}

// Dial connects a client to a broker.
func Dial(addr string) (*Client, error) {
	tc, err := transport.Dial(transport.KindSCTPish, addr)
	if err != nil {
		return nil, err
	}
	c := &Client{tc: tc, subs: make(map[string]*clientSub), done: make(chan struct{})}
	go c.recvLoop()
	return c, nil
}

// Close disconnects the client; subscription channels are closed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	return c.tc.Close()
}

// recvLoop delivers broker messages to local subscribers. It reads with
// plain Recv deliberately: each frame arrives in a buffer the loop owns
// exclusively and never recycles, so a single subscriber can be handed a
// view of the wire itself — the copy is paid only when several local
// subscribers share a channel and must not see each other's payload as
// aliased mutable state.
func (c *Client) recvLoop() {
	for {
		wire, err := c.tc.Recv()
		if err != nil {
			c.mu.Lock()
			for _, sub := range c.subs {
				for _, ch := range sub.chans {
					close(ch)
				}
			}
			c.subs = make(map[string]*clientSub)
			c.mu.Unlock()
			return
		}
		verb, channel, payload, err := decodeFrame(wire)
		if err != nil {
			continue
		}
		var tc trace.Context
		if verb == verbMessageT {
			if tc, payload, err = splitTraced(payload); err != nil {
				continue
			}
		} else if verb != verbMessage {
			continue
		}
		// Deliver under the lock: the channel sends below never block
		// (select with default), and holding it removes the per-message
		// snapshot allocation of the subscriber list.
		c.mu.Lock()
		sub := c.subs[string(channel)]
		if sub == nil || len(sub.chans) == 0 {
			c.mu.Unlock()
			continue
		}
		if len(sub.chans) > 1 {
			payload = append([]byte(nil), payload...)
		}
		msg := Message{Channel: sub.name, Payload: payload, Trace: tc}
		for _, ch := range sub.chans {
			select {
			case ch <- msg:
				brokerTel.clientDeliver.Inc()
			default: // slow subscriber: drop, like Redis pub/sub
				brokerTel.clientDropped.Inc()
			}
		}
		c.mu.Unlock()
	}
}

// Publish sends payload to every subscriber of channel. The wire frame
// is built in a client-owned scratch buffer: steady publishing does not
// allocate.
func (c *Client) Publish(channel string, payload []byte) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.pub = appendFrame(c.pub[:0], verbPublish, channel, payload)
	return c.tc.Send(c.pub)
}

// PublishTraced is Publish linked into a trace: it records a
// "broker.publish" span under tc and carries the context to the broker,
// which records its fan-out and forwards the context to subscribers.
// With an invalid context it degrades to plain Publish, so call sites
// need no branching.
func (c *Client) PublishTraced(channel string, payload []byte, tc trace.Context) error {
	if !trace.Enabled || !tc.Valid() {
		return c.Publish(channel, payload)
	}
	sp := trace.StartChild(tc, "broker.publish")
	c.sendMu.Lock()
	c.pub = appendTracedFrame(c.pub[:0], verbPublishT, channel, sp.Context(), payload)
	err := c.tc.Send(c.pub)
	c.sendMu.Unlock()
	sp.End()
	return err
}

// Subscribe registers for a channel, returning a buffered delivery
// channel. Messages overflowing the buffer are dropped (Redis pub/sub
// semantics).
func (c *Client) Subscribe(channel string, depth int) (<-chan Message, error) {
	if depth <= 0 {
		depth = 256
	}
	ch := make(chan Message, depth)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	sub := c.subs[channel]
	if sub == nil {
		sub = &clientSub{name: channel}
		c.subs[channel] = sub
	}
	first := len(sub.chans) == 0
	sub.chans = append(sub.chans, ch)
	c.mu.Unlock()
	if first {
		c.sendMu.Lock()
		err := c.tc.Send(encodeFrame(verbSubscribe, channel, nil))
		c.sendMu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return ch, nil
}
