package broker

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// A single subscriber's delivered payload aliases the receive buffer
// (the copy-free fast path). That is only sound because the receive
// loop never recycles those buffers: a payload handed out must stay
// intact no matter how much later traffic flows.
func TestSingleSubscriberPayloadSurvivesLaterTraffic(t *testing.T) {
	addr := startBroker(t)
	sub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	ch, err := sub.Subscribe("stats.mac", 64)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)

	const rounds = 32
	for i := 0; i < rounds; i++ {
		if err := pub.Publish("stats.mac", bytes.Repeat([]byte{byte(i + 1)}, 256)); err != nil {
			t.Fatal(err)
		}
	}
	var got []Message
	for i := 0; i < rounds; i++ {
		select {
		case m := <-ch:
			got = append(got, m)
		case <-time.After(5 * time.Second):
			t.Fatalf("delivery %d never arrived", i)
		}
	}
	// Verify every payload only after all frames have been received: a
	// recvLoop that reused buffers would have overwritten earlier
	// deliveries by now.
	for i, m := range got {
		want := bytes.Repeat([]byte{byte(i + 1)}, 256)
		if !bytes.Equal(m.Payload, want) {
			t.Fatalf("delivery %d corrupted by later traffic: got %x... want %x...",
				i, m.Payload[:4], want[:4])
		}
	}
}

// With several local subscribers on one channel, each delivery shares a
// copied payload that must not alias the wire (one subscriber is free
// to hold its message while more frames arrive).
func TestMultiSubscriberDelivery(t *testing.T) {
	addr := startBroker(t)
	sub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	ch1, err := sub.Subscribe("multi", 16)
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := sub.Subscribe("multi", 16)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)

	for i := 0; i < 8; i++ {
		if err := pub.Publish("multi", []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var first1, first2 Message
	for i := 0; i < 8; i++ {
		select {
		case m := <-ch1:
			if i == 0 {
				first1 = m
			}
		case <-time.After(5 * time.Second):
			t.Fatal("ch1 starved")
		}
		select {
		case m := <-ch2:
			if i == 0 {
				first2 = m
			}
		case <-time.After(5 * time.Second):
			t.Fatal("ch2 starved")
		}
	}
	if string(first1.Payload) != "payload-0" || string(first2.Payload) != "payload-0" {
		t.Fatalf("first deliveries corrupted: %q / %q", first1.Payload, first2.Payload)
	}
	if first1.Channel != "multi" || first2.Channel != "multi" {
		t.Fatalf("channel names: %q / %q", first1.Channel, first2.Channel)
	}
}
