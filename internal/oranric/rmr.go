package oranric

import (
	"encoding/binary"
	"sync"

	"flexric/internal/transport"
)

// The RMR-style message bus: O-RAN's RIC message router addresses
// components by message type through a routing table; here the routing
// decision is folded into a fixed header (agent ID) since the emulation
// runs one E2T and one xApp host, but every message still pays the extra
// hop, the header, and a payload copy, as RMR does.

// rmrMsg is one bus frame.
type rmrMsg struct {
	agent   uint32
	payload []byte
}

const rmrHeader = 8 // agent(4) + reserved(4), mimicking RMR's fixed header

func rmrSend(tc transport.Conn, mu *sync.Mutex, m rmrMsg) error {
	buf := make([]byte, rmrHeader+len(m.payload))
	binary.BigEndian.PutUint32(buf[0:], m.agent)
	copy(buf[rmrHeader:], m.payload)
	mu.Lock()
	defer mu.Unlock()
	return tc.Send(buf)
}

func rmrRecv(tc transport.Conn, mu *sync.Mutex) (rmrMsg, error) {
	mu.Lock()
	wire, err := tc.Recv()
	mu.Unlock()
	if err != nil {
		return rmrMsg{}, err
	}
	if len(wire) < rmrHeader {
		return rmrMsg{}, transport.ErrClosed
	}
	return rmrMsg{
		agent:   binary.BigEndian.Uint32(wire[0:]),
		payload: wire[rmrHeader:],
	}, nil
}
