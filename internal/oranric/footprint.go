package oranric

// Deployment footprint model for the O-RAN RIC reference platform.
//
// The paper's testbed numbers come from `docker image ls` and
// `docker stats` of the Cherry release (Table 2: 2469 MB of platform
// images; Fig. 9b: 1024 MB resident across platform components + xApp).
// Containers are not available in this reproduction, so the inventory
// below encodes the Cherry release's 15 platform components with image
// and resident-memory figures calibrated to those published totals. The
// *inventory structure* (which components exist and that each runs
// always-on in its own container) is the load-bearing fact the paper's
// Table 2 argument rests on; the per-component split is approximate.

// Component is one platform micro-service.
type Component struct {
	Name string
	// ImageMB is the container image size.
	ImageMB int
	// ResidentMB is the steady-state memory footprint.
	ResidentMB int
	// Language notes the implementation language the paper remarks on
	// ("partially written in higher-level languages, such as Go").
	Language string
}

// PlatformComponents returns the 15 components of the reference
// near-RT RIC platform (Cherry release).
func PlatformComponents() []Component {
	return []Component{
		{Name: "e2term", ImageMB: 220, ResidentMB: 120, Language: "C++"},
		{Name: "e2mgr", ImageMB: 190, ResidentMB: 90, Language: "Go"},
		{Name: "submgr", ImageMB: 180, ResidentMB: 85, Language: "Go"},
		{Name: "rtmgr", ImageMB: 160, ResidentMB: 60, Language: "Go"},
		{Name: "appmgr", ImageMB: 170, ResidentMB: 60, Language: "Go"},
		{Name: "a1mediator", ImageMB: 160, ResidentMB: 55, Language: "Python"},
		{Name: "o1mediator", ImageMB: 150, ResidentMB: 50, Language: "Go"},
		{Name: "alarmmanager", ImageMB: 140, ResidentMB: 45, Language: "Go"},
		{Name: "vespamgr", ImageMB: 140, ResidentMB: 40, Language: "Go"},
		{Name: "dbaas-redis", ImageMB: 110, ResidentMB: 80, Language: "C"},
		{Name: "jaegeradapter", ImageMB: 180, ResidentMB: 70, Language: "Go"},
		{Name: "prometheus", ImageMB: 190, ResidentMB: 95, Language: "Go"},
		{Name: "alertmanager", ImageMB: 120, ResidentMB: 45, Language: "Go"},
		{Name: "influxdb", ImageMB: 200, ResidentMB: 75, Language: "Go"},
		{Name: "kong-proxy", ImageMB: 159, ResidentMB: 54, Language: "Lua"},
	}
}

// XAppImageMB is the modeled image size of a reference xApp container
// (Table 2 lists the HW xApp at 170 MB, the stats xApp at 166 MB).
const (
	HWXAppImageMB    = 170
	StatsXAppImageMB = 166
	// XAppResidentMB is the per-xApp steady-state memory.
	XAppResidentMB = 100
)

// PlatformImageMB totals the platform image sizes.
func PlatformImageMB() int {
	total := 0
	for _, c := range PlatformComponents() {
		total += c.ImageMB
	}
	return total
}

// PlatformResidentMB totals the platform's steady-state memory.
func PlatformResidentMB() int {
	total := 0
	for _, c := range PlatformComponents() {
		total += c.ResidentMB
	}
	return total
}
