// Package oranric emulates the O-RAN-SC near-real-time RIC ("Cherry"
// release) as the comparison baseline of §5.4.
//
// The paper attributes O-RAN's overhead to three structural decisions,
// all reproduced here:
//
//  1. Two message hops: agent → "E2 termination" → xApp, each a separate
//     component connected by real sockets (RMR-style bus), so every
//     indication and control traverses two transports (Fig. 9a).
//  2. Double decoding: "indication messages are decoded twice, once in
//     the 'E2 termination', and the xApp" (Fig. 9b). The E2T fully
//     decodes and re-encodes every E2AP message it relays.
//  3. A fleet of always-on platform components (15 containers in the
//     reference deployment), modeled by the footprint inventory in
//     footprint.go (Table 2 / Fig. 9b memory).
//
// The E2 interface is O-RAN-standard: ASN.1-style encoding over the
// SCTP-like transport, so FlexRIC agents connect unmodified — the
// interoperability property of §3.
package oranric

import (
	"errors"
	"sync"
	"sync/atomic"

	"flexric/internal/e2ap"
	"flexric/internal/transport"
)

// ErrClosed reports use of a closed RIC.
var ErrClosed = errors.New("oranric: closed")

// RIC is the emulated near-RT RIC platform: E2 termination + message
// router + xApp host.
type RIC struct {
	e2Lis  transport.Listener
	busLis transport.Listener

	// busConn is the E2T side of the RMR-style bus; xappConn the xApp
	// host side. Each direction of each side has its own framing lock.
	busConn   transport.Conn
	xappConn  transport.Conn
	busSendMu sync.Mutex
	busRecvMu sync.Mutex
	xapSendMu sync.Mutex
	xapRecvMu sync.Mutex

	mu     sync.Mutex
	agents map[int]*ricAgent
	nextID int
	xapps  map[uint16]*XApp // keyed by requestor namespace
	nextNS uint16

	decodesAtE2T  atomic.Uint64 // first decode counter (diagnostics)
	decodesAtXApp atomic.Uint64 // second decode counter

	closed atomic.Bool
	wg     sync.WaitGroup
}

type ricAgent struct {
	id   int
	tc   transport.Conn
	info e2ap.GlobalE2NodeID
	fns  []e2ap.RANFunctionItem

	enc    e2ap.Codec
	sendMu sync.Mutex
}

func (a *ricAgent) send(pdu e2ap.PDU) error {
	a.sendMu.Lock()
	defer a.sendMu.Unlock()
	wire, err := a.enc.Encode(pdu)
	if err != nil {
		return err
	}
	return a.tc.Send(wire)
}

// Start launches the RIC platform. e2Addr is the E2 termination's listen
// address (":0" picks a port).
func Start(e2Addr string) (*RIC, error) {
	e2Lis, err := transport.Listen(transport.KindSCTPish, e2Addr)
	if err != nil {
		return nil, err
	}
	busLis, err := transport.Listen(transport.KindSCTPish, "127.0.0.1:0")
	if err != nil {
		e2Lis.Close()
		return nil, err
	}
	r := &RIC{
		e2Lis:  e2Lis,
		busLis: busLis,
		agents: make(map[int]*ricAgent),
		xapps:  make(map[uint16]*XApp),
		nextNS: 10, // leave low requestor IDs unused
	}

	// Bring up the internal RMR-style bus: the xApp host dials the E2T.
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := busLis.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	xc, err := transport.Dial(transport.KindSCTPish, busLis.Addr())
	if err != nil {
		e2Lis.Close()
		busLis.Close()
		return nil, err
	}
	r.xappConn = xc
	r.busConn = <-accepted

	r.wg.Add(3)
	go func() { defer r.wg.Done(); r.acceptAgents() }()
	go func() { defer r.wg.Done(); r.busToAgents() }()
	go func() { defer r.wg.Done(); r.xappHostLoop() }()
	return r, nil
}

// Addr returns the E2 termination address agents dial.
func (r *RIC) Addr() string { return r.e2Lis.Addr() }

// Close shuts down the platform.
func (r *RIC) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	r.e2Lis.Close()
	r.busLis.Close()
	r.busConn.Close()
	r.xappConn.Close()
	r.mu.Lock()
	for _, a := range r.agents {
		a.tc.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
	return nil
}

// DoubleDecodes reports how many messages were decoded at the E2T and at
// the xApp host (diagnostics for the Fig. 9b CPU attribution).
func (r *RIC) DoubleDecodes() (e2t, xapp uint64) {
	return r.decodesAtE2T.Load(), r.decodesAtXApp.Load()
}

// Agents lists connected agent IDs.
func (r *RIC) Agents() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.agents))
	for id := range r.agents {
		out = append(out, id)
	}
	return out
}

// --- E2 termination ---

func (r *RIC) acceptAgents() {
	for {
		tc, err := r.e2Lis.Accept()
		if err != nil {
			return
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.serveAgent(tc)
		}()
	}
}

func (r *RIC) serveAgent(tc transport.Conn) {
	dec := e2ap.NewPERCodec()
	wire, err := tc.Recv()
	if err != nil {
		tc.Close()
		return
	}
	pdu, err := dec.Decode(wire)
	if err != nil {
		tc.Close()
		return
	}
	setup, ok := pdu.(*e2ap.SetupRequest)
	if !ok {
		tc.Close()
		return
	}
	a := &ricAgent{tc: tc, info: setup.NodeID, fns: setup.RANFunctions, enc: e2ap.NewPERCodec()}
	accepted := make([]uint16, len(setup.RANFunctions))
	for i, f := range setup.RANFunctions {
		accepted[i] = f.ID
	}
	if err := a.send(&e2ap.SetupResponse{TransactionID: setup.TransactionID, Accepted: accepted}); err != nil {
		tc.Close()
		return
	}
	r.mu.Lock()
	a.id = r.nextID
	r.nextID++
	r.agents[a.id] = a
	r.mu.Unlock()

	// Relay loop: FIRST decode at the E2 termination, then re-encode
	// into an RMR frame toward the xApp host.
	relayEnc := e2ap.NewPERCodec()
	for {
		wire, err := tc.Recv()
		if err != nil {
			break
		}
		pdu, err := dec.Decode(wire) // first decode
		if err != nil {
			continue
		}
		r.decodesAtE2T.Add(1)
		e2tProcessing(dec, relayEnc, wire)
		rewire, err := relayEnc.Encode(pdu) // re-encode for the bus
		if err != nil {
			continue
		}
		if err := rmrSend(r.busConn, &r.busSendMu, rmrMsg{agent: uint32(a.id), payload: rewire}); err != nil {
			break
		}
	}

	r.mu.Lock()
	delete(r.agents, a.id)
	r.mu.Unlock()
	tc.Close()
}

// busToAgents relays xApp-originated messages (subscriptions, controls)
// to agents, with the E2T's validation decode + re-encode.
func (r *RIC) busToAgents() {
	dec := e2ap.NewPERCodec()
	busEnc := e2ap.NewPERCodec()
	for {
		msg, err := rmrRecv(r.busConn, &r.busRecvMu)
		if err != nil {
			return
		}
		pdu, err := dec.Decode(msg.payload) // E2T validation decode
		if err != nil {
			continue
		}
		r.decodesAtE2T.Add(1)
		e2tProcessing(dec, busEnc, msg.payload)
		r.mu.Lock()
		a := r.agents[int(msg.agent)]
		r.mu.Unlock()
		if a == nil {
			continue
		}
		_ = a.send(pdu) // re-encode toward the agent
	}
}

// e2tProcessingFactor models the per-message processing cost of the
// reference E2 termination and RMR relative to this repository's codec.
// The paper measured localhost MTU RTTs of ~1 ms through the O-RAN
// pipeline against ~0.3 ms for a FlexRIC relay with identical hop count,
// attributing the gap to "an inefficient implementation" (asn1c decode
// costs, RMR route resolution and copies, container networking). Since
// our Go codec is far cheaper than asn1c, the E2T replays the
// decode+re-encode cycle this many extra times per message so the
// emulated pipeline carries a calibrated equivalent of that measured
// inefficiency. Structure (two hops, double decode) is real; only this
// scalar is calibrated.
const e2tProcessingFactor = 128

func e2tProcessing(dec, enc *PERWork, wire []byte) {
	for i := 0; i < e2tProcessingFactor; i++ {
		pdu, err := dec.Decode(wire)
		if err != nil {
			return
		}
		if _, err := enc.Encode(pdu); err != nil {
			return
		}
	}
}

// PERWork aliases the codec type used by the E2T's processing model.
type PERWork = e2ap.PERCodec
