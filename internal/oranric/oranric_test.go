package oranric_test

import (
	"sync/atomic"
	"testing"
	"time"

	"flexric/internal/agent"
	"flexric/internal/e2ap"
	"flexric/internal/oranric"
	"flexric/internal/ran"
	"flexric/internal/sm"
)

// startAgentBS brings up a simulated BS with a standard FlexRIC agent
// connected to the O-RAN RIC — proving E2-level interoperability.
func startAgentBS(t *testing.T, addr string) (*ran.Cell, *agent.Agent, []agent.RANFunction) {
	t.Helper()
	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT4G, NumRB: 25})
	if err != nil {
		t.Fatal(err)
	}
	a := agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: 4},
		Scheme: e2ap.SchemeASN, // O-RAN standard encoding
	})
	fns := []agent.RANFunction{
		sm.NewMACStats(cell, sm.SchemeASN, a),
		sm.NewHW(),
	}
	for _, fn := range fns {
		if err := a.RegisterFunction(fn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return cell, a, fns
}

func TestRICSetupAndSubscription(t *testing.T) {
	ric, err := oranric.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ric.Close()

	cell, _, fns := startAgentBS(t, ric.Addr())
	if _, err := cell.Attach(1, "", "208.95", 28); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(ric.Agents()) == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if len(ric.Agents()) != 1 {
		t.Fatal("agent did not register at the RIC")
	}
	agentID := ric.Agents()[0]

	var subscribed atomic.Bool
	var reports atomic.Int64
	x := ric.DeployXApp("stats-mon", oranric.XAppCallbacks{
		OnSubscribed: func(int) { subscribed.Store(true) },
		OnIndication: func(ag int, ind *e2ap.Indication) {
			if _, err := sm.DecodeMACReport(ind.Payload); err == nil {
				reports.Add(1)
			}
		},
	})
	if err := x.Subscribe(agentID, sm.IDMACStats,
		sm.EncodeTrigger(sm.SchemeASN, sm.Trigger{PeriodMS: 1}),
		[]e2ap.Action{{ID: 1, Type: e2ap.ActionReport}}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !subscribed.Load() {
		time.Sleep(2 * time.Millisecond)
	}
	if !subscribed.Load() {
		t.Fatal("no subscription confirmation through the pipeline")
	}

	// Drive the BS slot loop; reports must traverse both hops.
	for i := 0; i < 200 && reports.Load() < 20; i++ {
		cell.Step(1)
		sm.TickAll(fns, cell.Now())
		time.Sleep(time.Millisecond)
	}
	if reports.Load() < 20 {
		t.Fatalf("only %d reports through the two-hop pipeline", reports.Load())
	}

	// The structural claim of Fig. 9b: every relayed message is decoded
	// at the E2T and again at the xApp host.
	e2t, xapp := ric.DoubleDecodes()
	if e2t == 0 || xapp == 0 {
		t.Fatalf("double-decode counters: e2t=%d xapp=%d", e2t, xapp)
	}
	if xapp > e2t {
		t.Fatalf("xapp decodes (%d) cannot exceed e2t decodes (%d)", xapp, e2t)
	}
}

func TestRICControlPath(t *testing.T) {
	ric, err := oranric.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ric.Close()
	startAgentBS(t, ric.Addr())

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(ric.Agents()) == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	agentID := ric.Agents()[0]

	pongs := make(chan *sm.HWPing, 4)
	var subbed atomic.Bool
	x := ric.DeployXApp("hw", oranric.XAppCallbacks{
		OnSubscribed: func(int) { subbed.Store(true) },
		OnIndication: func(ag int, ind *e2ap.Indication) {
			if p, err := sm.DecodeHWPing(ind.Payload); err == nil {
				pongs <- p
			}
		},
	})
	if err := x.Subscribe(agentID, sm.IDHelloWorld,
		sm.EncodeTrigger(sm.SchemeASN, sm.Trigger{PeriodMS: 1}), nil); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !subbed.Load() {
		time.Sleep(2 * time.Millisecond)
	}
	ping := &sm.HWPing{Seq: 5, T0: time.Now().UnixNano(), Data: make([]byte, 100)}
	if err := x.Control(agentID, sm.IDHelloWorld, nil, sm.EncodeHWPing(sm.SchemeASN, ping), false); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-pongs:
		if p.Seq != 5 {
			t.Fatalf("pong seq %d", p.Seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no pong through two hops")
	}
}

func TestFootprintModel(t *testing.T) {
	comps := oranric.PlatformComponents()
	if len(comps) != 15 {
		t.Fatalf("platform components: %d, want 15 (Cherry default deployment)", len(comps))
	}
	img := oranric.PlatformImageMB()
	if img != 2469 {
		t.Fatalf("platform image total %d MB, calibrated to Table 2's 2469", img)
	}
	res := oranric.PlatformResidentMB()
	if res < 900 || res > 1100 {
		t.Fatalf("platform resident %d MB, calibrated near Fig. 9b's 1024", res)
	}
	for _, c := range comps {
		if c.Name == "" || c.ImageMB <= 0 || c.ResidentMB <= 0 {
			t.Fatalf("component %+v incomplete", c)
		}
	}
}
