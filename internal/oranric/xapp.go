package oranric

import (
	"fmt"
	"sync"

	"flexric/internal/e2ap"
)

// XAppCallbacks deliver events to an xApp.
type XAppCallbacks struct {
	// OnIndication receives the fully-decoded indication (the second
	// decode of the O-RAN pipeline happens before this call).
	OnIndication func(agent int, ind *e2ap.Indication)
	// OnSubscribed confirms a subscription.
	OnSubscribed func(agent int)
	// OnControlOutcome reports a control ack/failure.
	OnControlOutcome func(agent int, outcome []byte, failed bool)
}

// XApp is a deployed external application.
type XApp struct {
	ric  *RIC
	name string
	ns   uint16 // requestor namespace
	cb   XAppCallbacks

	mu      sync.Mutex
	instSeq uint16
}

// DeployXApp registers an xApp with the platform.
func (r *RIC) DeployXApp(name string, cb XAppCallbacks) *XApp {
	r.mu.Lock()
	defer r.mu.Unlock()
	x := &XApp{ric: r, name: name, ns: r.nextNS, cb: cb}
	r.nextNS++
	r.xapps[x.ns] = x
	return x
}

// Name returns the xApp's name.
func (x *XApp) Name() string { return x.name }

func (x *XApp) nextReq() e2ap.RequestID {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.instSeq++
	return e2ap.RequestID{Requestor: x.ns, Instance: x.instSeq}
}

// sendToAgent encodes a PDU at the xApp (first encoding of the
// northbound direction) and ships it over the bus; the E2T decodes,
// validates and re-encodes it toward the agent.
func (x *XApp) sendToAgent(agent int, pdu e2ap.PDU) error {
	r := x.ric
	if r.closed.Load() {
		return ErrClosed
	}
	enc := e2ap.NewPERCodec()
	wire, err := enc.Encode(pdu)
	if err != nil {
		return err
	}
	return rmrSend(r.xappConn, &r.xapSendMu, rmrMsg{agent: uint32(agent), payload: wire})
}

// Subscribe sends an E2 subscription through the platform.
func (x *XApp) Subscribe(agent int, fnID uint16, trigger []byte, actions []e2ap.Action) error {
	return x.sendToAgent(agent, &e2ap.SubscriptionRequest{
		RequestID:     x.nextReq(),
		RANFunctionID: fnID,
		EventTrigger:  trigger,
		Actions:       actions,
	})
}

// Control sends an E2 control message through the platform.
func (x *XApp) Control(agent int, fnID uint16, header, payload []byte, ack bool) error {
	return x.sendToAgent(agent, &e2ap.ControlRequest{
		RequestID:     x.nextReq(),
		RANFunctionID: fnID,
		Header:        header,
		Payload:       payload,
		AckRequested:  ack,
	})
}

// xappHostLoop is the xApp host: it receives bus frames and performs the
// SECOND E2AP decode before dispatching to the owning xApp.
func (r *RIC) xappHostLoop() {
	dec := e2ap.NewPERCodec()
	for {
		msg, err := rmrRecv(r.xappConn, &r.xapRecvMu)
		if err != nil {
			return
		}
		pdu, err := dec.Decode(msg.payload) // second decode
		if err != nil {
			continue
		}
		r.decodesAtXApp.Add(1)
		agent := int(msg.agent)
		switch m := pdu.(type) {
		case *e2ap.Indication:
			if x := r.xappByNS(m.RequestID.Requestor); x != nil && x.cb.OnIndication != nil {
				x.cb.OnIndication(agent, m)
			}
		case *e2ap.SubscriptionResponse:
			if x := r.xappByNS(m.RequestID.Requestor); x != nil && x.cb.OnSubscribed != nil {
				x.cb.OnSubscribed(agent)
			}
		case *e2ap.ControlAck:
			if x := r.xappByNS(m.RequestID.Requestor); x != nil && x.cb.OnControlOutcome != nil {
				x.cb.OnControlOutcome(agent, m.Outcome, false)
			}
		case *e2ap.ControlFailure:
			if x := r.xappByNS(m.RequestID.Requestor); x != nil && x.cb.OnControlOutcome != nil {
				x.cb.OnControlOutcome(agent, m.Outcome, true)
			}
		}
	}
}

func (r *RIC) xappByNS(ns uint16) *XApp {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.xapps[ns]
}

// String describes the xApp for logs.
func (x *XApp) String() string { return fmt.Sprintf("xapp(%s/%d)", x.name, x.ns) }
