package agent

import (
	"flexric/internal/bufpool"
	"flexric/internal/e2ap"
	"flexric/internal/telemetry"
	"flexric/internal/trace"
	"flexric/internal/transport"
)

// BatchIndicationSender is implemented by indication senders that
// support batched emission. The concrete senders handed to RAN
// functions by this agent implement it; code that might run against
// other IndicationSender implementations should type-assert.
type BatchIndicationSender interface {
	IndicationSender
	// NewBatch returns an empty batch bound to this sender's
	// subscription and controller connection.
	NewBatch() *IndicationBatch
}

// NewBatch implements BatchIndicationSender.
func (s *indicationSender) NewBatch() *IndicationBatch {
	return &IndicationBatch{s: s, enc: e2ap.MustCodec(s.conn.agent.cfg.Scheme)}
}

// IndicationBatch accumulates indications and flushes them to the
// controller as one coalesced transport operation — on the stream
// transport a single vectored write, i.e. one syscall per TTI instead
// of one per indication (§5.1's 1 ms reporting regime is exactly this
// shape). Add encodes immediately into pooled frames, so neither the
// caller's header/payload nor any per-message wire buffer is retained
// past the call that used it.
//
// A batch is not safe for concurrent use; sequence numbers are drawn
// from the owning sender, so batched and direct sends may be mixed
// across goroutines.
type IndicationBatch struct {
	s      *indicationSender
	enc    e2ap.Codec // batch-owned: Add encodes outside the conn send lock
	ind    e2ap.Indication
	frames [][]byte
	n      int // indications in frames, for telemetry on Flush
	// hint is the largest frame seen so far: pool requests at that size
	// land in the same size class the flushed frames were returned to,
	// so a steady stream recycles instead of growing from scratch.
	hint int
}

// Add encodes one indication into the batch. The header and payload are
// not retained. Nothing touches the wire until Flush.
func (b *IndicationBatch) Add(actionID uint8, class e2ap.IndicationClass, header, payload []byte) error {
	s := b.s
	s.snMu.Lock()
	s.sn++
	sn := s.sn
	s.snMu.Unlock()
	// Same trace shape as the direct path: the root span is born at the
	// agent and covers the encode; the transport cost lands on Flush.
	sp := trace.StartRoot("agent.indication")
	b.ind = e2ap.Indication{
		RequestID:     s.reqID,
		RANFunctionID: s.fnID,
		ActionID:      actionID,
		SN:            sn,
		Class:         class,
		Header:        header,
		Payload:       payload,
		Trace:         sp.Context(),
	}
	hint := b.hint
	if hint < 64 {
		hint = 64
	}
	wire, err := b.enc.EncodeAppend(bufpool.Get(hint)[:0], &b.ind)
	b.ind.Header, b.ind.Payload = nil, nil
	sp.End()
	if err != nil {
		return err
	}
	if len(wire) > b.hint {
		b.hint = len(wire)
	}
	b.frames = append(b.frames, wire)
	b.n++
	return nil
}

// Len reports the number of indications queued in the batch.
func (b *IndicationBatch) Len() int { return b.n }

// Flush transmits every queued indication in one transport operation
// and recycles the frame buffers. The batch is reusable afterwards,
// empty, whether or not the send succeeded (on error the messages are
// lost, exactly as a failed Send loses its message).
func (b *IndicationBatch) Flush() error {
	if b.n == 0 {
		return nil
	}
	c := b.s.conn
	c.sendMu.Lock()
	err := transport.SendBatch(c.tc, b.frames)
	c.sendMu.Unlock()
	// Transports do not retain the batch: frames go back to the pool.
	for i, f := range b.frames {
		bufpool.Put(f)
		b.frames[i] = nil
	}
	b.frames = b.frames[:0]
	n := b.n
	b.n = 0
	if telemetry.Enabled && err == nil {
		agentTel.indications.Add(uint64(n))
		b.s.sent.Add(uint64(n))
	}
	return err
}
