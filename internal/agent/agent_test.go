package agent_test

import (
	"testing"
	"time"

	"flexric/internal/agent"
	"flexric/internal/e2ap"
	"flexric/internal/transport"
)

// fakeController accepts one agent over the pipe transport and lets the
// test drive raw E2AP exchanges, exercising the agent's message handler
// without a full server.
type fakeController struct {
	t     *testing.T
	lis   transport.Listener
	conn  transport.Conn
	codec e2ap.Codec
}

func startFake(t *testing.T, name string) *fakeController {
	t.Helper()
	lis, err := transport.Listen(transport.KindPipe, name)
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeController{t: t, lis: lis, codec: e2ap.MustCodec(e2ap.SchemeASN)}
	t.Cleanup(func() {
		lis.Close()
		if f.conn != nil {
			f.conn.Close()
		}
	})
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		f.conn = conn
		// E2 setup handshake.
		wire, err := conn.Recv()
		if err != nil {
			return
		}
		codec := e2ap.MustCodec(e2ap.SchemeASN)
		pdu, err := codec.Decode(wire)
		if err != nil {
			return
		}
		setup, ok := pdu.(*e2ap.SetupRequest)
		if !ok {
			return
		}
		resp, _ := codec.Encode(&e2ap.SetupResponse{TransactionID: setup.TransactionID})
		_ = conn.Send(resp)
	}()
	return f
}

func (f *fakeController) send(pdu e2ap.PDU) {
	f.t.Helper()
	wire, err := f.codec.Encode(pdu)
	if err != nil {
		f.t.Fatal(err)
	}
	if err := f.conn.Send(wire); err != nil {
		f.t.Fatal(err)
	}
}

func (f *fakeController) recv() e2ap.PDU {
	f.t.Helper()
	wire, err := f.conn.Recv()
	if err != nil {
		f.t.Fatal(err)
	}
	pdu, err := e2ap.MustCodec(e2ap.SchemeASN).Decode(wire)
	if err != nil {
		f.t.Fatal(err)
	}
	return pdu
}

type nopFn struct{ id uint16 }

func (f nopFn) Definition() e2ap.RANFunctionItem {
	return e2ap.RANFunctionItem{ID: f.id, Revision: 1, OID: "nop"}
}
func (nopFn) OnSubscription(agent.ControllerID, *e2ap.SubscriptionRequest, agent.IndicationSender) error {
	return nil
}
func (nopFn) OnSubscriptionDelete(agent.ControllerID, *e2ap.SubscriptionDeleteRequest) error {
	return nil
}
func (nopFn) OnControl(agent.ControllerID, *e2ap.ControlRequest) ([]byte, error) {
	return nil, nil
}

func connectAgent(t *testing.T, name string) (*agent.Agent, *fakeController) {
	t.Helper()
	f := startFake(t, name)
	a := agent.New(agent.Config{
		NodeID:    e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 1, MNC: 1}, Type: e2ap.NodeENB, NodeID: 1},
		Transport: transport.KindPipe,
	})
	if err := a.RegisterFunction(nopFn{id: 140}); err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterFunction(nopFn{id: 142}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Connect(name); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	// Give the fake's accept goroutine time to stash the conn.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && f.conn == nil {
		time.Sleep(time.Millisecond)
	}
	if f.conn == nil {
		t.Fatal("fake controller never accepted")
	}
	return a, f
}

func TestAgentResetProcedure(t *testing.T) {
	_, f := connectAgent(t, "agent-reset")
	f.send(&e2ap.ResetRequest{TransactionID: 9, Cause: e2ap.Cause{Type: e2ap.CauseMisc}})
	pdu := f.recv()
	resp, ok := pdu.(*e2ap.ResetResponse)
	if !ok || resp.TransactionID != 9 {
		t.Fatalf("got %T %+v", pdu, pdu)
	}
}

func TestAgentServiceQuery(t *testing.T) {
	_, f := connectAgent(t, "agent-query")
	f.send(&e2ap.ServiceQuery{TransactionID: 3})
	pdu := f.recv()
	upd, ok := pdu.(*e2ap.ServiceUpdate)
	if !ok || upd.TransactionID != 3 {
		t.Fatalf("got %T %+v", pdu, pdu)
	}
	if len(upd.Added) != 2 {
		t.Fatalf("functions announced: %d", len(upd.Added))
	}
}

func TestAgentUnknownFunctionPaths(t *testing.T) {
	_, f := connectAgent(t, "agent-unknown")
	// Subscription to an unknown function → failure.
	f.send(&e2ap.SubscriptionRequest{
		RequestID: e2ap.RequestID{Requestor: 1, Instance: 1}, RANFunctionID: 999,
	})
	if _, ok := f.recv().(*e2ap.SubscriptionFailure); !ok {
		t.Fatal("expected SubscriptionFailure")
	}
	// Delete on an unknown function → failure.
	f.send(&e2ap.SubscriptionDeleteRequest{
		RequestID: e2ap.RequestID{Requestor: 1, Instance: 1}, RANFunctionID: 999,
	})
	if _, ok := f.recv().(*e2ap.SubscriptionDeleteFailure); !ok {
		t.Fatal("expected SubscriptionDeleteFailure")
	}
	// Control on an unknown function → failure.
	f.send(&e2ap.ControlRequest{
		RequestID: e2ap.RequestID{Requestor: 1, Instance: 2}, RANFunctionID: 999,
	})
	if _, ok := f.recv().(*e2ap.ControlFailure); !ok {
		t.Fatal("expected ControlFailure")
	}
}

func TestAgentUnexpectedMessage(t *testing.T) {
	_, f := connectAgent(t, "agent-unexpected")
	// A SetupResponse after setup is a protocol violation: the agent
	// answers with an error indication rather than dying.
	f.send(&e2ap.SetupResponse{TransactionID: 1})
	pdu := f.recv()
	ei, ok := pdu.(*e2ap.ErrorIndication)
	if !ok || ei.Cause.Type != e2ap.CauseProtocol {
		t.Fatalf("got %T %+v", pdu, pdu)
	}
}

func TestAgentFunctionsListing(t *testing.T) {
	a := agent.New(agent.Config{})
	if err := a.RegisterFunction(nopFn{id: 7}); err != nil {
		t.Fatal(err)
	}
	fns := a.Functions()
	if len(fns) != 1 || fns[0].ID != 7 {
		t.Fatalf("functions: %+v", fns)
	}
	if a.Controllers() != 0 {
		t.Fatal("no controllers yet")
	}
}
