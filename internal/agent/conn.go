package agent

import (
	"sync"
	"time"

	"flexric/internal/e2ap"
	"flexric/internal/telemetry"
	"flexric/internal/trace"
	"flexric/internal/transport"
)

// conn is one controller connection: the message handler of Fig. 3.
type conn struct {
	agent *Agent
	id    ControllerID
	addr  string
	// tc is the live transport. The reconnect supervisor swaps it under
	// sendMu, so IndicationSenders holding this conn stay valid across
	// reconnects; senders and Close read it under the same lock.
	tc transport.Conn

	// enc/dec are separate codec instances: enc is used by senders (any
	// goroutine, under sendMu) and dec only by the receive loop.
	enc e2ap.Codec
	dec e2ap.Codec

	sendMu sync.Mutex
	// Indication fast-path state, valid under sendMu: the PDU struct and
	// the wire buffer are reused across sends, so a steady indication
	// stream encodes and transmits without allocating.
	ind     e2ap.Indication
	sendBuf []byte
}

// closeTransport closes the current transport, reading it under the
// send lock so a concurrent reconnect swap cannot leak a live conn.
func (c *conn) closeTransport() {
	c.sendMu.Lock()
	tc := c.tc
	c.sendMu.Unlock()
	tc.Close()
}

// send encodes and transmits one PDU. Safe for concurrent use.
func (c *conn) send(pdu e2ap.PDU) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	wire, err := c.enc.Encode(pdu)
	if err != nil {
		return err
	}
	return transport.TracedSend(c.tc, wire, e2ap.TraceOf(pdu))
}

// sendIndication is the hot-path equivalent of send for indications:
// the PDU struct and wire buffer are connection-owned and reused, so
// nothing is allocated per message. Safe for concurrent use.
func (c *conn) sendIndication(ind e2ap.Indication) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.ind = ind
	wire, err := c.enc.EncodeAppend(c.sendBuf[:0], &c.ind)
	// Drop the references to the caller's buffers either way: the reused
	// struct must not pin them until the next indication.
	c.ind.Header, c.ind.Payload = nil, nil
	if err != nil {
		return err
	}
	c.sendBuf = wire[:0] // keep the grown buffer for the next send
	return transport.TracedSend(c.tc, wire, ind.Trace)
}

// recvLoop dispatches controller messages to RAN functions until the
// connection closes.
func (c *conn) recvLoop() {
	for {
		wire, err := c.tc.Recv()
		if err != nil {
			return
		}
		pdu, err := c.dec.Decode(wire)
		if err != nil {
			_ = c.send(&e2ap.ErrorIndication{
				Cause: e2ap.Cause{Type: e2ap.CauseProtocol, Value: 1},
			})
			continue
		}
		c.dispatch(pdu)
	}
}

func (c *conn) dispatch(pdu e2ap.PDU) {
	switch m := pdu.(type) {
	case *e2ap.SubscriptionRequest:
		c.handleSubscription(m)
	case *e2ap.SubscriptionDeleteRequest:
		c.handleSubscriptionDelete(m)
	case *e2ap.ControlRequest:
		c.handleControl(m)
	case *e2ap.ResetRequest:
		_ = c.send(&e2ap.ResetResponse{TransactionID: m.TransactionID})
	case *e2ap.ServiceQuery:
		_ = c.send(&e2ap.ServiceUpdate{TransactionID: m.TransactionID, Added: c.agent.Functions()})
	case *e2ap.ErrorIndication:
		// Logged by real deployments; nothing to unwind here.
	default:
		_ = c.send(&e2ap.ErrorIndication{
			Cause: e2ap.Cause{Type: e2ap.CauseProtocol, Value: 2},
		})
	}
}

func (c *conn) handleSubscription(m *e2ap.SubscriptionRequest) {
	// Fill latency: request dispatch to response on the wire.
	var t0 time.Time
	if telemetry.Enabled {
		t0 = time.Now()
	}
	// Child of the controller's server.subscribe span (the context rode
	// the wire inside the request). Covers lookup, SM fill, and the
	// response send on every exit path.
	sp := trace.StartChild(m.Trace, "agent.sub_fill")
	defer sp.End()
	fn := c.agent.fn(m.RANFunctionID)
	if fn == nil {
		agentTel.subsRejected.Inc()
		_ = c.send(&e2ap.SubscriptionFailure{
			RequestID:     m.RequestID,
			RANFunctionID: m.RANFunctionID,
			Cause:         e2ap.Cause{Type: e2ap.CauseRICRequest, Value: causeUnknownFunction},
		})
		return
	}
	tx := &indicationSender{conn: c, reqID: m.RequestID, fnID: m.RANFunctionID, sent: fnIndications(m.RANFunctionID)}
	if err := fn.OnSubscription(c.id, m, tx); err != nil {
		agentTel.subsRejected.Inc()
		_ = c.send(&e2ap.SubscriptionFailure{
			RequestID:     m.RequestID,
			RANFunctionID: m.RANFunctionID,
			Cause:         e2ap.Cause{Type: e2ap.CauseRICService, Value: causeSMRejected},
		})
		return
	}
	admitted := make([]uint8, len(m.Actions))
	for i, a := range m.Actions {
		admitted[i] = a.ID
	}
	_ = c.send(&e2ap.SubscriptionResponse{
		RequestID:     m.RequestID,
		RANFunctionID: m.RANFunctionID,
		Admitted:      admitted,
	})
	if telemetry.Enabled {
		agentTel.subsAccepted.Inc()
		agentTel.subFill.Observe(time.Since(t0))
	}
}

func (c *conn) handleSubscriptionDelete(m *e2ap.SubscriptionDeleteRequest) {
	fn := c.agent.fn(m.RANFunctionID)
	if fn == nil {
		_ = c.send(&e2ap.SubscriptionDeleteFailure{
			RequestID:     m.RequestID,
			RANFunctionID: m.RANFunctionID,
			Cause:         e2ap.Cause{Type: e2ap.CauseRICRequest, Value: causeUnknownFunction},
		})
		return
	}
	if err := fn.OnSubscriptionDelete(c.id, m); err != nil {
		_ = c.send(&e2ap.SubscriptionDeleteFailure{
			RequestID:     m.RequestID,
			RANFunctionID: m.RANFunctionID,
			Cause:         e2ap.Cause{Type: e2ap.CauseRICRequest, Value: causeUnknownSubscription},
		})
		return
	}
	_ = c.send(&e2ap.SubscriptionDeleteResponse{
		RequestID:     m.RequestID,
		RANFunctionID: m.RANFunctionID,
	})
}

func (c *conn) handleControl(m *e2ap.ControlRequest) {
	fn := c.agent.fn(m.RANFunctionID)
	if fn == nil {
		_ = c.send(&e2ap.ControlFailure{
			RequestID:     m.RequestID,
			RANFunctionID: m.RANFunctionID,
			Cause:         e2ap.Cause{Type: e2ap.CauseRICRequest, Value: causeUnknownFunction},
		})
		return
	}
	agentTel.controls.Inc()
	outcome, err := fn.OnControl(c.id, m)
	if err != nil {
		agentTel.controlFailed.Inc()
		_ = c.send(&e2ap.ControlFailure{
			RequestID:     m.RequestID,
			RANFunctionID: m.RANFunctionID,
			Cause:         e2ap.Cause{Type: e2ap.CauseRICService, Value: causeControlFailed},
			Outcome:       outcome,
		})
		return
	}
	if m.AckRequested {
		_ = c.send(&e2ap.ControlAck{
			RequestID:     m.RequestID,
			RANFunctionID: m.RANFunctionID,
			Outcome:       outcome,
		})
	}
}

// Cause values used by the agent.
const (
	causeUnknownFunction     = 1
	causeSMRejected          = 2
	causeUnknownSubscription = 3
	causeControlFailed       = 4
)

// indicationSender implements IndicationSender for one subscription.
type indicationSender struct {
	conn  *conn
	reqID e2ap.RequestID
	fnID  uint16
	sn    uint32
	snMu  sync.Mutex
	sent  *telemetry.Counter // per-RAN-function indication count
}

// SendIndication implements IndicationSender.
func (s *indicationSender) SendIndication(actionID uint8, class e2ap.IndicationClass, header, payload []byte) error {
	s.snMu.Lock()
	s.sn++
	sn := s.sn
	s.snMu.Unlock()
	// Root of the per-indication trace: the agent is where an indication
	// is born. The span covers encode + transport send; downstream
	// stages (dispatch, callbacks, fan-out) link to it via the context
	// carried in the PDU.
	sp := trace.StartRoot("agent.indication")
	err := s.conn.sendIndication(e2ap.Indication{
		RequestID:     s.reqID,
		RANFunctionID: s.fnID,
		ActionID:      actionID,
		SN:            sn,
		Class:         class,
		Header:        header,
		Payload:       payload,
		Trace:         sp.Context(),
	})
	sp.End()
	if telemetry.Enabled && err == nil {
		agentTel.indications.Inc()
		s.sent.Inc()
	}
	return err
}

// Controller implements IndicationSender.
func (s *indicationSender) Controller() ControllerID { return s.conn.id }
