package agent

import (
	"fmt"

	"flexric/internal/telemetry"
)

// Telemetry: the agent side of the paper's quantitative claims — how
// fast subscriptions are filled (request arrival to response on the
// wire) and how many indications each service model produces.
//
//	agent.indications               total indications sent (counter)
//	agent.fn<ID>.indications        per-RAN-function indications (counter)
//	agent.subscription_fill         subscription fill latency (histogram)
//	agent.subscriptions_accepted    (counter)
//	agent.subscriptions_rejected    (counter)
//	agent.controls                  control requests executed (counter)
//	agent.control_failures          (counter)
//	agent.reconnects                successful re-associations (counter)
//	agent.reconnect_failures        failed redial attempts (counter)
//	agent.reconnect_giveups         supervisors that hit MaxAttempts
//	agent.reconnect_backoff         backoff delays slept (histogram)
var agentTel = struct {
	indications       *telemetry.Counter
	subFill           *telemetry.Histogram
	subsAccepted      *telemetry.Counter
	subsRejected      *telemetry.Counter
	controls          *telemetry.Counter
	controlFailed     *telemetry.Counter
	reconnects        *telemetry.Counter
	reconnectFailures *telemetry.Counter
	reconnectGiveups  *telemetry.Counter
	reconnectBackoff  *telemetry.Histogram
}{
	indications:       telemetry.NewCounter("agent.indications"),
	subFill:           telemetry.NewHistogram("agent.subscription_fill"),
	subsAccepted:      telemetry.NewCounter("agent.subscriptions_accepted"),
	subsRejected:      telemetry.NewCounter("agent.subscriptions_rejected"),
	controls:          telemetry.NewCounter("agent.controls"),
	controlFailed:     telemetry.NewCounter("agent.control_failures"),
	reconnects:        telemetry.NewCounter("agent.reconnects"),
	reconnectFailures: telemetry.NewCounter("agent.reconnect_failures"),
	reconnectGiveups:  telemetry.NewCounter("agent.reconnect_giveups"),
	reconnectBackoff:  telemetry.NewHistogram("agent.reconnect_backoff"),
}

// fnIndications returns the per-RAN-function indication counter. Called
// on the subscription path (cold); the returned pointer rides in the
// indicationSender so the indication hot path pays one extra atomic add.
func fnIndications(fnID uint16) *telemetry.Counter {
	return telemetry.NewCounter(fmt.Sprintf("agent.fn%d.indications", fnID))
}
