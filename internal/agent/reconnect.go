package agent

import (
	"time"

	"flexric/internal/resilience"
	"flexric/internal/telemetry"
	"flexric/internal/trace"
)

// supervise is the agent-side recovery loop of the resilience subsystem
// (enabled by Config.Resilience): it runs the connection's receive loop
// and, when the association dies — conn drop, dead peer, controller
// restart — re-establishes it:
//
//  1. redial, spaced by capped exponential backoff with seeded jitter
//     (resilience.Backoff), interruptible by Agent.Close;
//  2. re-run E2 setup announcing the registered RAN functions, so the
//     controller can re-admit the node and replay its subscriptions;
//  3. swap the new transport under the send lock — IndicationSenders
//     hold the conn, not the transport, so live senders (the base
//     station's tick loop among them) keep working unchanged;
//  4. resume the receive loop.
//
// The loop ends when the agent closes or MaxAttempts consecutive
// redials fail. Each recovery is wrapped in an "agent.reconnect" trace
// span and counted in agent.reconnects / agent.reconnect_failures.
func (c *conn) supervise() {
	a := c.agent
	c.recvLoop()
	bo := resilience.NewBackoff(a.res.Backoff)
	attempts := 0
	for !a.closed.Load() {
		// Reap the dead transport before redialing: idempotent, and it
		// stops the old keepalive loop promptly.
		c.closeTransport()
		addr := c.addr
		if a.cfg.Rehome != nil {
			addr = a.cfg.Rehome(attempts, addr)
		}
		sp := trace.StartRoot("agent.reconnect")
		tc, err := a.dialAndSetup(addr)
		sp.End()
		if err != nil {
			agentTel.reconnectFailures.Inc()
			attempts++
			if a.res.MaxAttempts > 0 && attempts >= a.res.MaxAttempts {
				agentTel.reconnectGiveups.Inc()
				return
			}
			d := bo.Next()
			if telemetry.Enabled {
				agentTel.reconnectBackoff.Observe(d)
			}
			select {
			case <-time.After(d):
			case <-a.closeCh:
				return
			}
			continue
		}
		c.sendMu.Lock()
		c.tc = tc
		c.sendMu.Unlock()
		// The association landed on addr (possibly a re-home target);
		// future drops start their walk from it.
		c.addr = addr
		// Close may have run while the swap was in flight; it closed the
		// transport it saw, which might have been the old one.
		if a.closed.Load() {
			tc.Close()
			return
		}
		attempts = 0
		bo.Reset()
		agentTel.reconnects.Inc()
		c.recvLoop()
	}
}
