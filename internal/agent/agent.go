// Package agent implements the FlexRIC agent library (§4.1): the
// component that extends a base station with E2 connectivity. It provides
// the networking interface, the E2AP abstraction, the message handler,
// the generic RAN function API, and multi-controller support with a
// UE-to-controller association (§4.1.2).
//
// The agent library is deliberately independent of any user-plane
// implementation: RAN functions are the only point of contact with the
// base station, keeping the library RAT- and vendor-neutral.
package agent

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flexric/internal/e2ap"
	"flexric/internal/resilience"
	"flexric/internal/transport"
)

// ControllerID identifies one of the agent's controller connections. The
// first controller (index 0) is the primary; UEs are associated to it by
// default (§4.1.2: "the agent library associates every UE to the first
// controller").
type ControllerID int

// RANFunction is the generic RAN function API (§4.1.1): "this API defines
// callbacks for E2AP messages, i.e., (i) subscription requests, (ii)
// subscription delete request, and (iii) control messages, which need to
// be implemented by RAN functions."
//
// Callbacks run on the connection's receive goroutine; implementations
// must be safe for concurrent use with the base station's processing.
type RANFunction interface {
	// Definition describes the function for E2 setup.
	Definition() e2ap.RANFunctionItem
	// OnSubscription handles a subscription request. A nil error admits
	// all requested actions.
	OnSubscription(ctrl ControllerID, req *e2ap.SubscriptionRequest, tx IndicationSender) error
	// OnSubscriptionDelete removes a subscription.
	OnSubscriptionDelete(ctrl ControllerID, req *e2ap.SubscriptionDeleteRequest) error
	// OnControl executes an SM-specific action and optionally returns an
	// outcome payload.
	OnControl(ctrl ControllerID, req *e2ap.ControlRequest) (outcome []byte, err error)
}

// IndicationSender lets a RAN function emit indication messages for an
// admitted subscription. It remains valid until the subscription is
// deleted or the controller disconnects.
type IndicationSender interface {
	// SendIndication transmits an SM report/insert. The header and
	// payload are SM-encoded (E2's inner encoding pass).
	SendIndication(actionID uint8, class e2ap.IndicationClass, header, payload []byte) error
	// Controller identifies the subscribing controller.
	Controller() ControllerID
}

// Config parameterizes an Agent.
type Config struct {
	// NodeID is the agent's global E2 node identity.
	NodeID e2ap.GlobalE2NodeID
	// Scheme selects the E2AP encoding (default SchemeASN, the O-RAN
	// standard; SchemeFB is the low-CPU alternative of §4.3).
	Scheme e2ap.Scheme
	// Transport selects the wire transport (default KindSCTPish).
	Transport transport.Kind
	// Components describes the node's component configuration, sent in
	// the setup request.
	Components []e2ap.E2NodeComponentConfig
	// DialTimeout bounds connection establishment per Connect (and per
	// reconnect attempt). 0 means transport.DefaultDialTimeout.
	DialTimeout time.Duration
	// Resilience enables keepalives, dead-peer detection, and the
	// reconnect supervisor (capped exponential backoff, E2 setup re-run,
	// transparent transport swap under live indication senders). nil
	// keeps the fail-fast behavior: a dropped connection ends the
	// receive loop for good.
	Resilience *resilience.Config
	// WrapConn, when non-nil, wraps every dialed transport connection
	// before the resilience layer and the E2 handshake — the fault
	// injection hook (internal/faultinject).
	WrapConn func(transport.Conn) transport.Conn
	// Rehome, when non-nil, picks the controller address for each
	// reconnect attempt: attempt is the consecutive-failure count (0 on
	// the first redial after a drop) and last the most recent address.
	// The federation tier plugs a consistent-hash Placer in here so an
	// agent whose shard died walks its preference order to the ring
	// successor — and walks home again once the full cycle retries the
	// owner. nil keeps redialing the original address.
	Rehome func(attempt int, last string) string
}

func (c *Config) defaults() {
	if c.Scheme == "" {
		c.Scheme = e2ap.SchemeASN
	}
	if c.Transport == "" {
		c.Transport = transport.KindSCTPish
	}
}

// Agent connects a base station to one or more E2 controllers.
type Agent struct {
	cfg Config
	// res is the resolved resilience config; nil when disabled.
	res *resilience.Config

	mu    sync.Mutex
	fns   map[uint16]RANFunction
	conns []*conn
	// ueExposure maps RNTI → set of additional controllers the UE is
	// exposed to. Controller 0 sees every UE (§4.1.2).
	ueExposure map[uint16]map[ControllerID]bool

	closed atomic.Bool
	// closeCh unblocks reconnect supervisors sleeping in backoff.
	closeCh chan struct{}
	wg      sync.WaitGroup

	txSeq atomic.Uint32 // transaction IDs
}

// ErrClosed reports use of a closed agent.
var ErrClosed = errors.New("agent: closed")

// New returns an Agent with the given configuration.
func New(cfg Config) *Agent {
	cfg.defaults()
	a := &Agent{
		cfg:        cfg,
		fns:        make(map[uint16]RANFunction),
		ueExposure: make(map[uint16]map[ControllerID]bool),
		closeCh:    make(chan struct{}),
	}
	if cfg.Resilience != nil {
		r := cfg.Resilience.WithDefaults()
		a.res = &r
	}
	return a
}

// RegisterFunction adds a RAN function. Functions must be registered
// before Connect; the set is announced in the E2 setup request.
func (a *Agent) RegisterFunction(fn RANFunction) error {
	def := fn.Definition()
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.fns[def.ID]; dup {
		return fmt.Errorf("agent: duplicate RAN function %d", def.ID)
	}
	a.fns[def.ID] = fn
	return nil
}

// Functions returns the registered RAN function definitions.
func (a *Agent) Functions() []e2ap.RANFunctionItem {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]e2ap.RANFunctionItem, 0, len(a.fns))
	for _, fn := range a.fns {
		out = append(out, fn.Definition())
	}
	return out
}

// Connect dials a controller, performs E2 setup, and starts the receive
// loop. The first call establishes the primary controller (ID 0);
// subsequent calls add controllers for multi-service scenarios (§4.1.2).
// It returns the new controller's ID.
func (a *Agent) Connect(addr string) (ControllerID, error) {
	if a.closed.Load() {
		return 0, ErrClosed
	}
	tc, err := a.dialAndSetup(addr)
	if err != nil {
		return 0, err
	}
	c := &conn{
		agent: a,
		addr:  addr,
		tc:    tc,
		enc:   e2ap.MustCodec(a.cfg.Scheme),
		dec:   e2ap.MustCodec(a.cfg.Scheme),
	}

	a.mu.Lock()
	c.id = ControllerID(len(a.conns))
	a.conns = append(a.conns, c)
	a.mu.Unlock()

	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		if a.res != nil {
			c.supervise()
		} else {
			c.recvLoop()
		}
	}()
	return c.id, nil
}

// dialAndSetup establishes one controller association: dial (bounded by
// Config.DialTimeout), the optional fault wrap, the optional resilience
// wrap (so keepalives police the association from the first frame), and
// the synchronous E2 setup handshake announcing the currently
// registered RAN functions. The handshake uses a dedicated codec: on a
// reconnect the conn's codecs may be busy under concurrent senders.
func (a *Agent) dialAndSetup(addr string) (transport.Conn, error) {
	tc, err := transport.DialTimeout(a.cfg.Transport, addr, a.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	if a.cfg.WrapConn != nil {
		tc = a.cfg.WrapConn(tc)
	}
	if a.res != nil {
		tc = a.res.WrapConn(tc)
	}
	cod := e2ap.MustCodec(a.cfg.Scheme)
	setup := &e2ap.SetupRequest{
		TransactionID: uint8(a.txSeq.Add(1)),
		NodeID:        a.cfg.NodeID,
		RANFunctions:  a.Functions(),
		Components:    a.cfg.Components,
	}
	wire, err := cod.Encode(setup)
	if err != nil {
		tc.Close()
		return nil, fmt.Errorf("agent: setup encode: %w", err)
	}
	if err := tc.Send(wire); err != nil {
		tc.Close()
		return nil, fmt.Errorf("agent: setup send: %w", err)
	}
	// Synchronous setup response, as the E2 setup procedure is the
	// association handshake.
	reply, err := tc.Recv()
	if err != nil {
		tc.Close()
		return nil, fmt.Errorf("agent: setup recv: %w", err)
	}
	pdu, err := cod.Decode(reply)
	if err != nil {
		tc.Close()
		return nil, fmt.Errorf("agent: setup decode: %w", err)
	}
	switch m := pdu.(type) {
	case *e2ap.SetupResponse:
		// Accepted.
	case *e2ap.SetupFailure:
		tc.Close()
		return nil, fmt.Errorf("agent: setup rejected: %v", m.Cause)
	default:
		tc.Close()
		return nil, fmt.Errorf("agent: unexpected setup reply %s", pdu.MsgType())
	}
	return tc, nil
}

// Close terminates all controller connections.
func (a *Agent) Close() error {
	if a.closed.Swap(true) {
		return nil
	}
	close(a.closeCh)
	a.mu.Lock()
	conns := append([]*conn(nil), a.conns...)
	a.mu.Unlock()
	for _, c := range conns {
		c.closeTransport()
	}
	a.wg.Wait()
	return nil
}

// Controllers returns the number of connected controllers.
func (a *Agent) Controllers() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.conns)
}

// ExposeUE exposes a UE to an additional controller. Controller 0 sees
// all UEs implicitly; for others the association must be configured
// explicitly — typically triggered by a controller that learned the
// UE-to-service mapping from the CU (Fig. 4).
func (a *Agent) ExposeUE(ctrl ControllerID, rnti uint16) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.ueExposure[rnti]
	if m == nil {
		m = make(map[ControllerID]bool)
		a.ueExposure[rnti] = m
	}
	m[ctrl] = true
}

// HideUE removes a UE's exposure to an additional controller.
func (a *Agent) HideUE(ctrl ControllerID, rnti uint16) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if m := a.ueExposure[rnti]; m != nil {
		delete(m, ctrl)
	}
}

// UEVisible reports whether a RAN function handling a message from ctrl
// may reveal the UE. This is the lookup RAN functions use "when handling
// messages ... to look up and reveal the UEs that belong to the
// corresponding controllers" (§4.1.2).
func (a *Agent) UEVisible(ctrl ControllerID, rnti uint16) bool {
	if ctrl == 0 {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ueExposure[rnti][ctrl]
}

func (a *Agent) fn(id uint16) RANFunction {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.fns[id]
}
