module flexric

go 1.22
