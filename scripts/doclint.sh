#!/bin/sh
# doclint.sh - documentation consistency checks, run as part of
# scripts/verify.sh. Pure POSIX sh + grep/sed/find; no dependencies.
#
# Checks:
#   1. Every intra-repo markdown link (relative [text](path) target in
#      any *.md file) resolves to an existing file or directory.
#      External links (http/https/mailto) and pure #anchors are skipped;
#      a path#anchor link is checked for the path part only.
#   2. Every CLI flag documented in README.md or docs/*.md as a
#      backtick-quoted `-flag` token exists as a flag definition in some
#      cmd/*/main.go, so the docs cannot drift ahead of (or behind) the
#      binaries. Go toolchain flags (-tags, -bench, -race, ...) are
#      allowlisted.
set -eu
cd "$(dirname "$0")/.."

fail=$(mktemp)
trap 'rm -f "$fail"' EXIT INT TERM

echo "--- markdown links"
for f in $(find . -name '*.md' -not -path './.git/*'); do
    dir=$(dirname "$f")
    # Inline links: capture the (target) of every [text](target).
    grep -o '\[[^][]*\]([^()]*)' "$f" 2>/dev/null |
        sed 's/^.*(\([^()]*\))$/\1/' |
        while IFS= read -r target; do
            case "$target" in
            http://* | https://* | mailto:* | '#'*) continue ;;
            esac
            path=${target%%#*}
            [ -z "$path" ] && continue
            if [ ! -e "$dir/$path" ]; then
                echo "doclint: $f: broken link -> $target" >&2
                echo x >>"$fail"
            fi
        done
done

echo "--- documented flags"
# Flags the binaries actually define (flag.X("name", ...) in any
# cmd/*/main.go, including FlagSet receivers like fs.Int).
defined=$(grep -rhoE '\b[A-Za-z_]+\.(String|Bool|Int|Int64|Uint|Uint64|Float64|Duration)\("[a-z][a-z0-9-]*"' cmd/*/main.go |
    sed 's/.*("\([^"]*\)".*/\1/' | sort -u)
# Go toolchain / standard tool flags that docs legitimately mention but
# no binary defines.
allow="bench benchmem benchtime count cover coverprofile cpuprofile l
memprofile race run short tags timeout v x"
for df in $(grep -rhoE '`-[a-z][a-z0-9-]*' README.md docs/*.md 2>/dev/null |
    sed 's/^`-//' | sort -u); do
    ok=0
    for a in $allow; do
        [ "$df" = "$a" ] && ok=1 && break
    done
    [ $ok = 1 ] && continue
    if ! printf '%s\n' "$defined" | grep -qx "$df"; then
        echo "doclint: documented flag -$df not defined in any cmd/*/main.go" >&2
        echo x >>"$fail"
    fi
done

if [ -s "$fail" ]; then
    echo "doclint: FAILED" >&2
    exit 1
fi
echo "doclint: OK"
