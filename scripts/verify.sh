#!/bin/sh
# verify.sh - the repository's full pre-merge check, also available as
# `make verify`. Runs formatting, vet, both build modes (telemetry on and
# compiled out), and the test suite under the race detector.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go build -tags notelemetry"
go build -tags notelemetry ./...

echo "==> go test (tier-1 suite)"
go test ./...

echo "==> go test -race -short"
# -short skips the reduced-scale experiment shape tests: they assert CPU
# bounds that are meaningless under the race detector's ~10x
# instrumentation overhead. Concurrency coverage is unaffected.
go test -race -short ./...

echo "==> scale smoke (4 cells x 10k UEs, 95% idle; allocs/UE-slot gate)"
# The sharded RAN core at a CI-sized footprint: 40k UEs step 400 slots
# and the whole fleet — parked UEs, wake heap, packet emission — must
# stay under 0.05 allocations per UE-slot. Catches any per-idle-UE cost
# creeping back into the slot loop.
go test -count=1 -run 'TestScaleSmoke$' -v ./internal/ran/ | grep -E '(=== RUN|--- (PASS|FAIL)|^(PASS|FAIL|ok)|allocs/UE-slot)'

echo "==> go test -tags notelemetry (telemetry compiled out)"
go test -tags notelemetry ./internal/telemetry/ ./internal/transport/ ./internal/e2ap/

echo "==> go build -tags nofaultinject"
go build -tags nofaultinject ./...

echo "==> go test -tags nofaultinject (fault injection compiled out)"
go test -tags nofaultinject ./internal/faultinject/ ./internal/resilience/ ./internal/agent/ ./internal/server/

echo "==> seeded chaos suite (scripted drops + blackout, both codecs)"
go test -count=1 -run 'TestChaosDemo' -v ./internal/experiments/ | grep -E '^(=== RUN|--- (PASS|FAIL)|PASS|FAIL|ok)'

echo "==> control-room demo (WebSocket stream e2e, both codecs)"
# A headless WS client dials a live monitoring loop's /stream/ws,
# subscribes to mac.* deltas plus topology and span channels, receives
# batched delta frames, and closes with a clean RFC 6455 handshake.
go test -count=1 -run 'TestControlRoomDemo' -v ./internal/experiments/ | grep -E '^(=== RUN|--- (PASS|FAIL)|PASS|FAIL|ok)'

echo "==> A1 SLA closed-loop demo (violate -> remedy -> reconnect storm, both codecs)"
# An SLA policy installed over the /a1/* northbound: a load surge breaks
# the throughput target (VIOLATED), the enforcement loop shifts NVS
# capacity toward the SLA slice until the target holds again (ENFORCED),
# and slice churn plus three scripted connection drops do not unseat the
# verdict. Status transitions are asserted on the control-room a1
# channel and at /a1/status.
go test -count=1 -run 'TestSLADemo' -v ./internal/experiments/ | grep -E '^(=== RUN|--- (PASS|FAIL)|PASS|FAIL|ok)'

echo "==> federation demo (kill one shard -> re-home + snapshot restore, both codecs)"
# A root + 3 shards + 12 agents placed by consistent hashing. Killing
# the shard owning agent 1 must re-home its agents to the ring
# successor, resume the root's cross-shard subscription streams, and
# leave a federated windowed query over the pre-kill window equal to
# the pre-kill baseline — proof the successor restored the dead shard's
# tsdb snapshot.
go test -count=1 -run 'TestFederationDemo' -v ./internal/experiments/ | grep -E '^(=== RUN|--- (PASS|FAIL)|PASS|FAIL|ok)'

echo "==> go build -tags notrace"
go build -tags notrace ./...

echo "==> go test -tags notrace (tracing compiled out)"
go test -tags notrace ./internal/trace/ ./internal/transport/ ./internal/e2ap/

echo "==> hot-path benchmarks (allocation ceiling)"
# BenchmarkTransportHotPath guards the framed-TCP echo against telemetry
# regressions; BenchmarkTraceDisabled must report 0 allocs/op — unsampled
# tracing is required to be free on the hot path.
bench_out=$(go test -run xxx -bench 'BenchmarkTransportHotPath$|BenchmarkTraceDisabled$' -benchtime 100x . 2>&1)
echo "$bench_out"
if ! echo "$bench_out" | grep -q 'BenchmarkTraceDisabled'; then
    echo "verify: BenchmarkTraceDisabled did not run" >&2
    exit 1
fi
if ! echo "$bench_out" | grep 'BenchmarkTraceDisabled' | grep -q ' 0 allocs/op'; then
    echo "verify: disabled-trace hot path allocates" >&2
    exit 1
fi

echo "==> resilience send hot path (0 allocs/op gate)"
# The keepalive wrapper sits on the indication hot path; its no-fault
# Send must stay allocation-free.
res_out=$(go test -run xxx -bench 'BenchmarkResilienceSendHotPath$' -benchtime 100x ./internal/resilience/ 2>&1)
echo "$res_out"
if ! echo "$res_out" | grep -q 'BenchmarkResilienceSendHotPath'; then
    echo "verify: BenchmarkResilienceSendHotPath did not run" >&2
    exit 1
fi
if ! echo "$res_out" | grep 'BenchmarkResilienceSendHotPath' | grep -q ' 0 allocs/op'; then
    echo "verify: resilience send hot path allocates" >&2
    exit 1
fi

echo "==> indication fast path (<=2 allocs/op gate, all build modes)"
# The end-to-end indication pipeline — agent encode-append, pipe
# transport, server envelope dispatch, subscription callback — must stay
# (near-)allocation-free with telemetry compiled in and tracing
# unsampled, and in every stripped build mode. The gate accepts 0, 1 or
# 2 allocs/op.
for tags in "" "notelemetry" "notrace"; do
    if [ -n "$tags" ]; then
        label="-tags $tags"
        fp_out=$(go test -tags "$tags" -run xxx -bench 'BenchmarkIndicationFastPath$' -benchtime 500x . 2>&1)
    else
        label="default build"
        fp_out=$(go test -run xxx -bench 'BenchmarkIndicationFastPath$' -benchtime 500x . 2>&1)
    fi
    echo "--- $label"
    echo "$fp_out"
    if ! echo "$fp_out" | grep -q 'BenchmarkIndicationFastPath'; then
        echo "verify: BenchmarkIndicationFastPath did not run ($label)" >&2
        exit 1
    fi
    if ! echo "$fp_out" | grep 'BenchmarkIndicationFastPath' | grep -Eq ' [0-2] allocs/op'; then
        echo "verify: indication fast path exceeds 2 allocs/op ($label)" >&2
        exit 1
    fi
done

echo "==> tsdb append (<=1 alloc/op gate, all build modes)"
# Steady-state time-series ingest — the per-UE-field appends the monitor
# performs on every decoded report — must stay allocation-free whether
# telemetry and tracing are compiled in or out. The gate accepts 0 or 1
# allocs/op.
for tags in "" "notelemetry" "notrace"; do
    if [ -n "$tags" ]; then
        label="-tags $tags"
        ts_out=$(go test -tags "$tags" -run xxx -bench 'BenchmarkTSDBAppend$' -benchtime 10000x ./internal/tsdb/ 2>&1)
    else
        label="default build"
        ts_out=$(go test -run xxx -bench 'BenchmarkTSDBAppend$' -benchtime 10000x ./internal/tsdb/ 2>&1)
    fi
    echo "--- $label"
    echo "$ts_out"
    if ! echo "$ts_out" | grep -q 'BenchmarkTSDBAppend'; then
        echo "verify: BenchmarkTSDBAppend did not run ($label)" >&2
        exit 1
    fi
    if ! echo "$ts_out" | grep 'BenchmarkTSDBAppend' | grep -Eq ' [0-1] allocs/op'; then
        echo "verify: tsdb append exceeds 1 alloc/op ($label)" >&2
        exit 1
    fi
done

echo "==> tsdb append with stream hook registered (<=1 alloc/op gate)"
# The control-room hub taps every Append through SetAppendHook; the gate
# proves a registered hook (mutex + ring write, as the hub installs)
# keeps the ingest path allocation-free.
hk_out=$(go test -run xxx -bench 'BenchmarkTSDBAppendHooked$' -benchtime 10000x ./internal/tsdb/ 2>&1)
echo "$hk_out"
if ! echo "$hk_out" | grep -q 'BenchmarkTSDBAppendHooked'; then
    echo "verify: BenchmarkTSDBAppendHooked did not run" >&2
    exit 1
fi
if ! echo "$hk_out" | grep 'BenchmarkTSDBAppendHooked' | grep -Eq ' [0-1] allocs/op'; then
    echo "verify: hooked tsdb append exceeds 1 alloc/op" >&2
    exit 1
fi

echo "==> doc lint (markdown links + documented flags)"
sh scripts/doclint.sh

echo "==> bench suite smoke run"
# The full scripts/bench.sh suite at token iteration counts: proves
# every benchmark still runs and the JSON emitter works, without paying
# for real measurements. The throwaway output must parse as JSON (guards
# the awk emitter against bench-output format drift).
smoke_out=$(mktemp)
trap 'rm -f "$smoke_out"' EXIT INT TERM
FIG_BENCHTIME=1x HOT_BENCHTIME=10x MICRO_BENCHTIME=10x \
    SCALE_BENCHTIME=10x SCALE_BASE_BENCHTIME=5x \
    SCALE_CELLS=2 SCALE_UES_PER_CELL=200 SCALE_IDLE_PCT=90 SCALE_SHARDS=2 \
    OUT="$smoke_out" sh scripts/bench.sh >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$smoke_out"
fi
echo "bench smoke: OK"

echo "verify: OK"
