#!/bin/sh
# Paper benchmark suite + hot-path microbenches, with machine-readable
# output.
#
# Runs the Fig. 6/7/8 and Table 2 experiment benchmarks (reduced scale,
# -benchtime FIG_BENCHTIME), the fast-path microbenchmarks
# (-benchtime HOT_BENCHTIME / MICRO_BENCHTIME), the time-series store
# tier (append at MICRO_BENCHTIME, queries at HOT_BENCHTIME), and the
# compression tier (seal/decode/compressed queries, with the
# bytes/sample ReportMetric), the A1 SLA tier (enforcement-tick latency
# with the policies/s ReportMetric), and the scale tier (a cells x UEs
# fleet stepped by the sharded core vs the frozen pre-change per-UE
# loop, with ue_slots/s, p99_slot_ns and bytes/ue ReportMetrics), and
# the federation tier (consistent-hash placement and mergeable-partial
# union), all with -benchmem, and writes BENCH_pr10.json mapping
# benchmark name ->
# ns/op, B/op, allocs/op (plus any custom b.ReportMetric units, e.g.
# ue_slots/s -> ue_slots_s). The JSON also embeds two baselines so a
# reviewer can diff without checking out old trees: the pre-fast-path
# allocation counts and the pre-compression (PR 5) query latencies. See
# docs/PERFORMANCE.md.
#
# Tunables (env):
#   FIG_BENCHTIME    iterations for the simulation-backed figure benches
#                    (default 1x: each iteration is a full experiment)
#   HOT_BENCHTIME    iterations for end-to-end hot paths (default 2000x)
#   MICRO_BENCHTIME  iterations for pure-CPU microbenches (default 200000x)
#   SCALE_BENCHTIME       slots for the sharded scale bench (default 1000x)
#   SCALE_BASE_BENCHTIME  slots for the per-UE-loop baseline (default 200x:
#                         each slot sweeps the full fleet, so iterations
#                         are ~50x slower than the sharded core's)
#   SCALE_CELLS, SCALE_UES_PER_CELL, SCALE_IDLE_PCT, SCALE_SHARDS
#                    scale-tier fleet shape (default 1000 cells x 1000
#                    UEs = 1M UEs at 99% idle, 4 shards per cell)
#   OUT              output file (default BENCH_pr10.json)
set -eu
cd "$(dirname "$0")/.."

GO=${GO:-go}
FIG_BENCHTIME=${FIG_BENCHTIME:-1x}
HOT_BENCHTIME=${HOT_BENCHTIME:-2000x}
MICRO_BENCHTIME=${MICRO_BENCHTIME:-200000x}
SCALE_BENCHTIME=${SCALE_BENCHTIME:-1000x}
SCALE_BASE_BENCHTIME=${SCALE_BASE_BENCHTIME:-200x}
SCALE_CELLS=${SCALE_CELLS:-1000}
SCALE_UES_PER_CELL=${SCALE_UES_PER_CELL:-1000}
SCALE_IDLE_PCT=${SCALE_IDLE_PCT:-99}
SCALE_SHARDS=${SCALE_SHARDS:-4}
export SCALE_CELLS SCALE_UES_PER_CELL SCALE_IDLE_PCT SCALE_SHARDS
OUT=${OUT:-BENCH_pr10.json}

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT INT TERM

run() { # run <benchtime> <package> <regex>
    bt=$1; pkg=$2; re=$3
    "$GO" test -run xxx -bench "$re" -benchtime "$bt" -benchmem -timeout 60m "$pkg" | tee -a "$TMP"
}

# Micro and hot-path benches run first, before the simulation-backed
# figure suite heats the machine: the long experiment benches shift the
# CPU's thermal operating point enough to skew ~200 ns encode readings
# by 10%+.
echo "==> microbenches (benchtime $MICRO_BENCHTIME)"
run "$MICRO_BENCHTIME" ./internal/e2ap/ 'BenchmarkEncodeIndicationPER$|BenchmarkEncodeIndicationFlat$|BenchmarkEnvelopePER$|BenchmarkEnvelopeFlat$'
run "$MICRO_BENCHTIME" ./internal/bufpool/ 'BenchmarkGetPut$'

echo "==> end-to-end hot paths (benchtime $HOT_BENCHTIME)"
run "$HOT_BENCHTIME" . 'BenchmarkIndicationFastPath$|BenchmarkIndicationFastPathBatch$|BenchmarkTransportHotPath$|BenchmarkTraceDisabled$'
run "$HOT_BENCHTIME" ./internal/broker/ 'BenchmarkPublishDeliver$'
run "$HOT_BENCHTIME" ./internal/resilience/ 'BenchmarkResilienceSendHotPath$'

echo "==> time-series store (append @$MICRO_BENCHTIME, queries @$HOT_BENCHTIME)"
run "$MICRO_BENCHTIME" ./internal/tsdb/ 'BenchmarkTSDBAppend$|BenchmarkTSDBAppendParallel$|BenchmarkTSDBAppendRaw$'
run "$HOT_BENCHTIME" ./internal/tsdb/ 'BenchmarkTSDBLastK$|BenchmarkTSDBAggregate$|BenchmarkTSDBWindowQuery$'

echo "==> compression tier (seal/decode @$HOT_BENCHTIME)"
run "$MICRO_BENCHTIME" ./internal/tsdb/ 'BenchmarkTSDBCompressedAppend$'
run "$HOT_BENCHTIME" ./internal/tsdb/ 'BenchmarkTSDBChunkSeal$|BenchmarkTSDBChunkDecode$|BenchmarkTSDBCompressedWindowQuery$|BenchmarkTSDBSnapshot$'

echo "==> A1 SLA enforcement tier (benchtime $HOT_BENCHTIME)"
# One full enforcement tick — policy scan, slice-status fetch over a
# live HTTP northbound, windowed percentile evaluation per target — with
# the policies/s throughput ReportMetric.
run "$HOT_BENCHTIME" ./internal/xapp/ 'BenchmarkSLAEnforceTick$'

echo "==> federation tier (ring placement @$MICRO_BENCHTIME, partial merge @$HOT_BENCHTIME)"
# Owner lookup is on every agent (re)connect and takeover grouping;
# PartialMerge is the root's per-shard fold inside the federated query
# fan-out.
run "$MICRO_BENCHTIME" ./internal/federation/ 'BenchmarkRingOwner$'
run "$HOT_BENCHTIME" ./internal/tsdb/ 'BenchmarkPartialMerge$'

echo "==> figure suite (benchtime $FIG_BENCHTIME)"
run "$FIG_BENCHTIME" . 'BenchmarkFig6aAgentOverhead$|BenchmarkFig6bUESweep$|BenchmarkFig7aPingRTT$|BenchmarkFig7bSignaling$|BenchmarkFig8aControllerVsFlexRAN$|BenchmarkFig8bAgentSweep$|BenchmarkTable2Footprint$'

echo "==> scale tier (${SCALE_CELLS}x${SCALE_UES_PER_CELL} UEs, ${SCALE_IDLE_PCT}% idle, ${SCALE_SHARDS} shards)"
# The sharded/active-set core vs the frozen pre-change per-UE loop on
# the same fleet and traffic mix. Fleets are cached across b.N
# escalations, so the dominant cost is the slots themselves. Speedup =
# sharded ue_slots_s / baseline ue_slots_s.
run "$SCALE_BENCHTIME" ./internal/ran/ 'BenchmarkScaleShardedStep$'
run "$SCALE_BASE_BENCHTIME" ./internal/ran/ 'BenchmarkScaleBaselineStep$'

echo "==> writing $OUT"
{
    printf '{\n'
    printf '  "schema": "flexric-bench-v1",\n'
    printf '  "generated_by": "scripts/bench.sh",\n'
    printf '  "go": "%s",\n' "$("$GO" env GOVERSION)"
    printf '  "benchtime": {"fig": "%s", "hot": "%s", "micro": "%s", "scale": "%s", "scale_base": "%s"},\n' \
        "$FIG_BENCHTIME" "$HOT_BENCHTIME" "$MICRO_BENCHTIME" "$SCALE_BENCHTIME" "$SCALE_BASE_BENCHTIME"
    printf '  "scale": {"cells": %s, "ues_per_cell": %s, "idle_pct": %s, "shards": %s},\n' \
        "$SCALE_CELLS" "$SCALE_UES_PER_CELL" "$SCALE_IDLE_PCT" "$SCALE_SHARDS"
    # Measured on the commit immediately before the zero-allocation fast
    # path landed (same machine class, -benchmem). The encode benches
    # were already allocation-free; the fast path's win there is the
    # availability of EncodeAppend, not a delta on these numbers.
    cat <<'EOF'
  "baseline_pre_fastpath": {
    "BenchmarkEncodeIndicationPER": {"ns_op": 206.2, "B_op": 1, "allocs_op": 0},
    "BenchmarkEncodeIndicationFlat": {"ns_op": 197.6, "B_op": 3, "allocs_op": 0},
    "BenchmarkEnvelopePER": {"ns_op": 1168, "B_op": 1666, "allocs_op": 3},
    "BenchmarkEnvelopeFlat": {"ns_op": 263.6, "B_op": 68, "allocs_op": 1},
    "BenchmarkTransportHotPath": {"ns_op": 15319, "B_op": 3216, "allocs_op": 6},
    "BenchmarkPublishDeliver": {"ns_op": 19542, "B_op": 3287, "allocs_op": 16}
  },
  "baseline_pr5_tsdb": {
    "_comment": "query latencies before chunk compression and the single-pass Window rewrite (PR 5 tree, same machine class); raw samples were 16 bytes each with no compressed tier",
    "BenchmarkTSDBWindowQuery": {"ns_op": 373000, "B_op": 254640, "allocs_op": 122}
  },
EOF
    printf '  "benchmarks": {\n'
    awk '
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)
            body = ""
            for (i = 3; i + 1 <= NF; i += 2) {
                key = $(i + 1)
                gsub(/\//, "_", key)
                gsub(/%/, "pct_", key)
                if (body != "") body = body ", "
                body = body sprintf("\"%s\": %s", key, $i)
            }
            if (out != "") print out ","
            out = sprintf("    \"%s\": {%s}", name, body)
        }
        END { if (out != "") print out }
    ' "$TMP"
    printf '  }\n}\n'
} >"$OUT"

echo "bench: wrote $OUT"
