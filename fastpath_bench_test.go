package main

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"flexric/internal/agent"
	"flexric/internal/e2ap"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/telemetry"
	"flexric/internal/trace"
	"flexric/internal/transport"
)

// benchFn is a minimal RAN function that hands its indication sender to
// the benchmark.
type benchFn struct {
	id uint16

	mu sync.Mutex
	tx agent.IndicationSender
}

func (f *benchFn) Definition() e2ap.RANFunctionItem {
	return e2ap.RANFunctionItem{ID: f.id, Revision: 1, OID: "1.3.6.1.4.1.53148.1.9"}
}

func (f *benchFn) OnSubscription(ctrl agent.ControllerID, req *e2ap.SubscriptionRequest, tx agent.IndicationSender) error {
	f.mu.Lock()
	f.tx = tx
	f.mu.Unlock()
	return nil
}

func (f *benchFn) OnSubscriptionDelete(ctrl agent.ControllerID, req *e2ap.SubscriptionDeleteRequest) error {
	return nil
}

func (f *benchFn) OnControl(ctrl agent.ControllerID, req *e2ap.ControlRequest) ([]byte, error) {
	return nil, nil
}

// fastPathFixture wires one agent to one server over the in-process
// pipe transport (FB scheme) and subscribes to the bench function,
// returning the live indication sender and a channel signalled from the
// server's OnIndication callback.
func fastPathFixture(b *testing.B) (agent.IndicationSender, chan struct{}, func()) {
	b.Helper()
	telemetry.Reset()
	srv := server.New(server.Config{
		RICID:     e2ap.GlobalRICID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, RICID: 7},
		Scheme:    e2ap.SchemeFB,
		Transport: transport.KindPipe,
	})
	addr, err := srv.Start(fmt.Sprintf("bench-fastpath-%d", time.Now().UnixNano()))
	if err != nil {
		b.Fatal(err)
	}
	fn := &benchFn{id: sm.IDHelloWorld}
	a := agent.New(agent.Config{
		NodeID:    e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeDU, NodeID: 9},
		Scheme:    e2ap.SchemeFB,
		Transport: transport.KindPipe,
	})
	if err := a.RegisterFunction(fn); err != nil {
		b.Fatal(err)
	}
	if _, err := a.Connect(addr); err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.Agents()) == 0 {
		if time.Now().After(deadline) {
			b.Fatal("agent never registered")
		}
		time.Sleep(time.Millisecond)
	}
	got := make(chan struct{}, 1)
	_, err = srv.Subscribe(srv.Agents()[0].ID, fn.id, sm.EncodeTrigger(sm.SchemeFB, sm.Trigger{PeriodMS: 1}),
		[]e2ap.Action{{ID: 1, Type: e2ap.ActionReport}},
		server.SubscriptionCallbacks{OnIndication: func(ev server.IndicationEvent) {
			if len(ev.Env.IndicationPayload()) == 0 {
				panic("indication without payload")
			}
			got <- struct{}{}
		}})
	if err != nil {
		b.Fatal(err)
	}
	for {
		fn.mu.Lock()
		tx := fn.tx
		fn.mu.Unlock()
		if tx != nil {
			cleanup := func() {
				a.Close()
				srv.Close()
			}
			return tx, got, cleanup
		}
		if time.Now().After(deadline) {
			b.Fatal("subscription never admitted")
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkIndicationFastPath measures the end-to-end indication path —
// SM payload already encoded, E2AP encode, pipe transport, server
// envelope dispatch, subscription callback — with telemetry compiled in
// and tracing unsampled, i.e. the production configuration. verify.sh
// gates this at ≤2 allocs/op: the zero/near-zero-allocation contract of
// the whole pipeline (encode-append into a reused buffer, pooled pipe
// frames, recycled receive buffers, reused envelope views).
func BenchmarkIndicationFastPath(b *testing.B) {
	if trace.SampleEvery() != 0 {
		b.Fatal("trace sampling enabled; the fast path benchmark measures the unsampled configuration")
	}
	tx, got, cleanup := fastPathFixture(b)
	defer cleanup()
	header := []byte{1}
	payload := bytes.Repeat([]byte{0x42}, 1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.SendIndication(1, e2ap.IndicationReport, header, payload); err != nil {
			b.Fatal(err)
		}
		<-got
	}
}

// BenchmarkIndicationFastPathBatch is the batched variant: indications
// are encoded into pooled frames as they are added and flushed to the
// transport in groups of 8 (one coalesced wire operation per TTI).
// allocs/op counts per indication.
func BenchmarkIndicationFastPathBatch(b *testing.B) {
	if trace.SampleEvery() != 0 {
		b.Fatal("trace sampling enabled; the fast path benchmark measures the unsampled configuration")
	}
	tx, got, cleanup := fastPathFixture(b)
	defer cleanup()
	bs, ok := tx.(agent.BatchIndicationSender)
	if !ok {
		b.Fatalf("%T does not support batching", tx)
	}
	batch := bs.NewBatch()
	header := []byte{1}
	payload := bytes.Repeat([]byte{0x42}, 1500)
	const batchSize = 8
	flush := func() {
		n := batch.Len()
		if n == 0 {
			return
		}
		if err := batch.Flush(); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < n; j++ {
			<-got
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := batch.Add(1, e2ap.IndicationReport, header, payload); err != nil {
			b.Fatal(err)
		}
		if batch.Len() == batchSize {
			flush()
		}
	}
	flush()
}
