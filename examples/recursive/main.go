// Recursive slicing (§6.2): two operators share one 50 RB eNB through
// the virtualization controller. Each operator runs an UNMODIFIED
// slicing controller against its virtual network (50 % SLA ⇒ 100 %
// virtual resources); the virtualization layer scales shares per
// Appendix B, remaps slice IDs into disjoint intervals, and partitions
// the MAC statistics so each operator only sees its own subscribers.
//
//	go run ./examples/recursive
package main

import (
	"fmt"
	"log"
	"time"

	"flexric/internal/agent"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/ran"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/xapp"
)

func main() {
	// Tenant controllers: standard slicing controllers, one per operator.
	mkTenant := func(name string) (*server.Server, string, *ctrl.SlicingController) {
		srv := server.New(server.Config{})
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		sc, err := ctrl.NewSlicingController(srv, sm.SchemeASN, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("operator %s slicing controller: http://%s\n", name, sc.Addr())
		return srv, addr, sc
	}
	srvA, addrA, scA := mkTenant("A")
	defer srvA.Close()
	defer scA.Close()
	srvB, addrB, scB := mkTenant("B")
	defer srvB.Close()
	defer scB.Close()

	// Virtualization controller: operator A owns UEs 1-2, B owns 3-4,
	// both at a 50 % SLA.
	vc, southAddr, err := ctrl.NewVirtCtrl(ctrl.VirtConfig{
		Scheme: sm.SchemeASN,
		Tenants: []ctrl.Tenant{
			{Name: "A", SLA: 0.5, Subscribers: map[uint16]bool{1: true, 2: true}},
			{Name: "B", SLA: 0.5, Subscribers: map[uint16]bool{3: true, 4: true}},
		},
		SouthAddr: "127.0.0.1:0",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer vc.Close()

	// Shared infrastructure: one 50 RB (10 MHz) eNB, four saturated UEs.
	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT4G, NumRB: 50, Band: 7})
	if err != nil {
		log.Fatal(err)
	}
	a := agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: 1},
	})
	fns := []agent.RANFunction{
		sm.NewMACStats(cell, sm.SchemeASN, a),
		sm.NewSliceCtrl(cell, sm.SchemeASN),
	}
	for _, fn := range fns {
		if err := a.RegisterFunction(fn); err != nil {
			log.Fatal(err)
		}
	}
	for i := uint16(1); i <= 4; i++ {
		if _, err := cell.Attach(i, "", "208.95", 28); err != nil {
			log.Fatal(err)
		}
		if err := cell.AddTraffic(i, &ran.Saturating{
			Flow:           ran.FiveTuple{DstIP: uint32(i), DstPort: 5001, Proto: ran.ProtoUDP},
			RateBytesPerMS: 1 << 20,
		}); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := a.Connect(southAddr); err != nil {
		log.Fatal(err)
	}
	defer a.Close()

	// Wait for the virtualization layer to install per-tenant slices,
	// then attach the tenant controllers (in tenant order).
	for cell.SliceMode() != ran.SliceNVS {
		time.Sleep(5 * time.Millisecond)
	}
	if err := vc.ConnectTenant(0, addrA); err != nil {
		log.Fatal(err)
	}
	if err := vc.ConnectTenant(1, addrB); err != nil {
		log.Fatal(err)
	}

	report := func(label string, ms int) {
		start := make(map[uint16]uint64)
		for i := uint16(1); i <= 4; i++ {
			start[i] = cell.UEDeliveredBits(i)
		}
		for t := 0; t < ms; t++ {
			cell.Step(1)
			sm.TickAll(fns, cell.Now())
		}
		fmt.Printf("%-34s", label)
		for i := uint16(1); i <= 4; i++ {
			mbps := float64(cell.UEDeliveredBits(i)-start[i]) / float64(ms) * 1000 / 1e6
			fmt.Printf("  UE%d %5.1f", i, mbps)
		}
		fmt.Println(" (Mbps)")
	}

	report("initial: both tenants 50% SLA", 3000)

	// Operator A splits its virtual network 66/34 — through its own
	// controller, oblivious that it only owns half the spectrum.
	xA := xapp.NewSliceXApp("http://"+scA.Addr(), 0)
	if err := xA.Deploy(ctrl.SliceConfigJSON{
		Algo: "nvs",
		Slices: []ctrl.SliceParamJSON{
			{ID: 0, Kind: "capacity", Capacity: 0.66, UESched: "pf"},
			{ID: 1, Kind: "capacity", Capacity: 0.34, UESched: "pf"},
		},
	}); err != nil {
		log.Fatal(err)
	}
	if err := xA.Associate(2, 1); err != nil {
		log.Fatal(err)
	}
	report("A sub-slices 66/34 (B unaffected)", 3000)

	// Operator A's virtual view vs the physical truth.
	if st, err := xA.Status(); err == nil {
		fmt.Printf("operator A's virtual slices: ")
		for _, s := range st.Slices {
			fmt.Printf("[id=%d cap=%.0f%%] ", s.ID, float64(s.CapacityQ)/10000)
		}
		fmt.Println()
	}
	fmt.Printf("physical slices at the eNB:  ")
	for _, s := range cell.Slices() {
		fmt.Printf("[id=%d cap=%.0f%%] ", s.ID, s.Capacity*100)
	}
	fmt.Println()

	// SLA enforcement: A cannot grab more than its half.
	err = xA.Deploy(ctrl.SliceConfigJSON{
		Algo: "nvs",
		Slices: []ctrl.SliceParamJSON{
			{ID: 0, Kind: "capacity", Capacity: 0.9},
			{ID: 1, Kind: "capacity", Capacity: 0.9},
		},
	})
	fmt.Printf("A tries to overbook its virtual network: %v\n", err)
}
