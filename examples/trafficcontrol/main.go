// Traffic control: the §6.1.1 bufferbloat experiment end to end. A VoIP
// flow shares a bearer with a TCP-Cubic bulk transfer. The TC xApp
// watches sojourn times through the controller's message broker and,
// when latency degrades, applies the paper's three-action remedy:
// second FIFO queue, 5-tuple filter, 5G-BDP pacer.
//
//	go run ./examples/trafficcontrol
package main

import (
	"fmt"
	"log"
	"time"

	"flexric/internal/agent"
	"flexric/internal/broker"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/ran"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/xapp"
)

func main() {
	// Message broker (the Redis role of Table 3).
	brk, brkAddr, err := broker.NewServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer brk.Close()

	// Controller: server library + TC specialization (stats→broker
	// iApps, TC SM manager with REST).
	srv := server.New(server.Config{Scheme: e2ap.SchemeFB})
	e2Addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	tcc, err := ctrl.NewTCController(srv, sm.SchemeFB, brkAddr, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer tcc.Close()

	// Base station with RLC stats + TC SM.
	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT4G, NumRB: 25, Band: 7})
	if err != nil {
		log.Fatal(err)
	}
	a := agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: 1},
		Scheme: e2ap.SchemeFB,
	})
	fns := []agent.RANFunction{
		sm.NewRLCStats(cell, sm.SchemeFB, a),
		sm.NewTCCtrl(cell, sm.SchemeFB, a),
	}
	for _, fn := range fns {
		if err := a.RegisterFunction(fn); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := a.Connect(e2Addr); err != nil {
		log.Fatal(err)
	}
	defer a.Close()

	// UE with a VoIP flow (G.711: 172 B / 20 ms) and, 5 s in, a greedy
	// Cubic transfer sharing the same bearer.
	if _, err := cell.Attach(1, "", "208.95", 28); err != nil {
		log.Fatal(err)
	}
	voip := &ran.CBR{
		Flow:          ran.FiveTuple{DstIP: 1, DstPort: 5060, Proto: ran.ProtoUDP},
		Size:          172,
		IntervalMS:    20,
		ReturnDelayMS: 10,
	}
	if err := cell.AddTraffic(1, voip); err != nil {
		log.Fatal(err)
	}
	if err := cell.AddTraffic(1, &ran.CubicFlow{
		Flow:    ran.FiveTuple{DstIP: 1, DstPort: 5001, Proto: ran.ProtoTCP},
		StartMS: 5000,
	}); err != nil {
		log.Fatal(err)
	}

	// The TC xApp: broker subscriber + REST remedy.
	x, err := xapp.NewTCXApp("http://"+tcc.Addr(), brkAddr, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	x.FilterDstPort = 5060
	x.FilterProto = uint8(ran.ProtoUDP)
	go func() {
		if err := x.Run(); err != nil {
			log.Printf("xapp: %v", err)
		}
	}()
	defer x.Close()

	// Slot loop: 30 simulated seconds; report sojourn + VoIP RTT once a
	// (simulated) second.
	fmt.Println("t(s)  RLC sojourn(ms)  TC backlog(B)  remedy")
	for t := 1; t <= 30000; t++ {
		cell.Step(1)
		sm.TickAll(fns, cell.Now())
		if t%10 == 0 {
			time.Sleep(100 * time.Microsecond) // let the broker/xApp path run
		}
		if t%1000 == 0 {
			var sojourn int64
			var backlog int
			_ = cell.WithUE(1, func(u *ran.UE) error {
				sojourn = u.RLC().OldestSojournMS(cell.Now())
				for _, q := range u.TC().Stats().Queues {
					backlog += q.BufferBytes
				}
				return nil
			})
			mark := ""
			if x.Applied() {
				mark = "applied"
			}
			fmt.Printf("%4d  %15d  %13d  %s\n", t/1000, sojourn, backlog, mark)
		}
	}
	rtts := voip.RTTs()
	var worst int64
	for _, r := range rtts {
		if r > worst {
			worst = r
		}
	}
	fmt.Printf("VoIP: %d samples, worst RTT %d ms, remedy applied: %v\n",
		len(rtts), worst, x.Applied())
}
