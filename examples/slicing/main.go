// Slicing: the RAT-unaware slicing controller of §6.1.2 end to end.
// A 20 MHz NR cell serves three saturated UEs; an xApp deploys NVS
// slices over the controller's REST northbound and shifts resource
// shares, reproducing the isolation timeline of Fig. 13a.
//
//	go run ./examples/slicing
package main

import (
	"fmt"
	"log"

	"flexric/internal/agent"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/ran"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/xapp"
)

func main() {
	// Controller: server library + slicing specialization (internal
	// stats DB, SC SM manager, REST northbound — Table 4).
	srv := server.New(server.Config{})
	e2Addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	sc, err := ctrl.NewSlicingController(srv, sm.SchemeASN, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Close()
	fmt.Println("slicing controller REST on http://" + sc.Addr())

	// Base station: 106 RB NR cell with MAC stats + SC SM.
	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT5G, NumRB: 106, Band: 78})
	if err != nil {
		log.Fatal(err)
	}
	a := agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeGNB, NodeID: 1},
	})
	fns := []agent.RANFunction{
		sm.NewMACStats(cell, sm.SchemeASN, a),
		sm.NewSliceCtrl(cell, sm.SchemeASN),
	}
	for _, fn := range fns {
		if err := a.RegisterFunction(fn); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := a.Connect(e2Addr); err != nil {
		log.Fatal(err)
	}
	defer a.Close()

	// Three saturated UEs at MCS 20, like the paper's Pixel-5 setup.
	for i := uint16(1); i <= 3; i++ {
		if _, err := cell.Attach(i, "", "208.95", 20); err != nil {
			log.Fatal(err)
		}
		if err := cell.AddTraffic(i, &ran.Saturating{
			Flow:           ran.FiveTuple{DstIP: uint32(i), DstPort: 5001, Proto: ran.ProtoUDP},
			RateBytesPerMS: 1 << 20,
		}); err != nil {
			log.Fatal(err)
		}
	}

	run := func(label string, ms int) {
		start := make(map[uint16]uint64)
		for i := uint16(1); i <= 3; i++ {
			start[i] = cell.UEDeliveredBits(i)
		}
		for t := 0; t < ms; t++ {
			cell.Step(1)
			sm.TickAll(fns, cell.Now())
		}
		fmt.Printf("%-22s", label)
		for i := uint16(1); i <= 3; i++ {
			mbps := float64(cell.UEDeliveredBits(i)-start[i]) / float64(ms) * 1000 / 1e6
			fmt.Printf("  UE%d %5.1f Mbps", i, mbps)
		}
		fmt.Println()
	}

	x := xapp.NewSliceXApp("http://"+sc.Addr(), 0)

	// Phase 1: no slicing — the proportional-fair pool splits equally.
	run("no slicing", 3000)

	// Phase 2: 50/50 slices, UE1 alone in slice 1 → UE1 gets half the
	// cell even against two competitors.
	if err := x.Deploy(ctrl.SliceConfigJSON{
		Algo: "nvs",
		Slices: []ctrl.SliceParamJSON{
			{ID: 1, Kind: "capacity", Capacity: 0.5, UESched: "pf"},
			{ID: 2, Kind: "capacity", Capacity: 0.5, UESched: "pf"},
		},
	}); err != nil {
		log.Fatal(err)
	}
	for rnti, slice := range map[uint16]uint32{1: 1, 2: 2, 3: 2} {
		if err := x.Associate(rnti, slice); err != nil {
			log.Fatal(err)
		}
	}
	run("NVS 50/50 (UE1 alone)", 3000)

	// Phase 3: raise slice 1 to 66 %.
	if err := x.Deploy(ctrl.SliceConfigJSON{
		Algo: "nvs",
		Slices: []ctrl.SliceParamJSON{
			{ID: 1, Kind: "capacity", Capacity: 0.66, UESched: "pf"},
			{ID: 2, Kind: "capacity", Capacity: 0.34, UESched: "pf"},
		},
	}); err != nil {
		log.Fatal(err)
	}
	run("NVS 66/34", 3000)
}
