// Quickstart: the smallest complete FlexRIC deployment — one controller
// (server library + monitoring iApp), one simulated base station with a
// FlexRIC agent exposing the monitoring service models, one UE with
// saturating downlink traffic. Prints the MAC statistics the controller
// receives for two simulated seconds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"flexric/internal/agent"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/ran"
	"flexric/internal/server"
	"flexric/internal/sm"
)

func main() {
	// 1. Controller: server library + statistics iApp (event-driven, no
	// polling).
	srv := server.New(server.Config{Scheme: e2ap.SchemeFB})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	mon := ctrl.NewMonitor(srv, ctrl.MonitorConfig{Scheme: sm.SchemeFB, PeriodMS: 100, Decode: true})
	fmt.Println("controller listening on", addr)

	// 2. Base station: simulated 5 MHz LTE cell + agent library with the
	// MAC/RLC/PDCP monitoring SMs.
	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT4G, NumRB: 25, Band: 7})
	if err != nil {
		log.Fatal(err)
	}
	a := agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: 1},
		Scheme: e2ap.SchemeFB,
	})
	fns := []agent.RANFunction{
		sm.NewMACStats(cell, sm.SchemeFB, a),
		sm.NewRLCStats(cell, sm.SchemeFB, a),
		sm.NewPDCPStats(cell, sm.SchemeFB, a),
	}
	for _, fn := range fns {
		if err := a.RegisterFunction(fn); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := a.Connect(addr); err != nil {
		log.Fatal(err)
	}
	defer a.Close()

	// 3. One UE at MCS 28 with a saturating downlink flow.
	if _, err := cell.Attach(1, "imsi-001010000000001", "208.95", 28); err != nil {
		log.Fatal(err)
	}
	if err := cell.AddTraffic(1, &ran.Saturating{
		Flow:           ran.FiveTuple{DstIP: 1, DstPort: 5001, Proto: ran.ProtoUDP},
		RateBytesPerMS: 1 << 20,
	}); err != nil {
		log.Fatal(err)
	}

	// 4. Run the slot loop: 2000 TTIs (= 2 s of air time), printing the
	// controller's view twice per simulated second.
	for tti := 1; tti <= 2000; tti++ {
		cell.Step(1)
		sm.TickAll(fns, cell.Now())
		if tti%500 == 0 {
			// Give the socket path a moment to deliver.
			time.Sleep(20 * time.Millisecond)
			for _, info := range srv.Agents() {
				rep := mon.MAC(info.ID)
				if rep == nil {
					continue
				}
				fmt.Printf("t=%4dms agent %s:", cell.Now(), info.NodeID)
				for _, ue := range rep.UEs {
					fmt.Printf(" UE%d thpt=%.1fMbps cqi=%d", ue.RNTI, ue.ThroughputBps/1e6, ue.CQI)
				}
				fmt.Println()
			}
		}
	}
	inds, bytes := mon.Counters()
	fmt.Printf("done: %d indications, %d payload bytes received\n", inds, bytes)
}
