// Monitoring: a multi-cell deployment with a disaggregated base station.
// Two monolithic eNBs and one CU/DU split station connect to one
// controller; the RAN database merges the CU and DU agents into a single
// RAN entity and fires a completion event, and the monitoring iApp
// collects statistics from everyone (§4.2.2).
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"flexric/internal/agent"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/ran"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/telemetry"
)

func main() {
	srv := server.New(server.Config{Scheme: e2ap.SchemeFB})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	mon := ctrl.NewMonitor(srv, ctrl.MonitorConfig{Scheme: sm.SchemeFB, PeriodMS: 10, Decode: true})
	srv.OnRANComplete(func(e server.RANEntity) {
		fmt.Printf("RAN entity complete: node %d with %d part(s)\n", e.NodeID, len(e.Parts))
	})

	plmn := e2ap.PLMN{MCC: 208, MNC: 95}
	var cells []*ran.Cell
	var allFns []agent.RANFunction
	var agents []*agent.Agent

	// Two monolithic eNBs.
	for id := uint64(1); id <= 2; id++ {
		cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT4G, NumRB: 25})
		if err != nil {
			log.Fatal(err)
		}
		a := agent.New(agent.Config{
			NodeID: e2ap.GlobalE2NodeID{PLMN: plmn, Type: e2ap.NodeENB, NodeID: id},
			Scheme: e2ap.SchemeFB,
		})
		fns := []agent.RANFunction{
			sm.NewMACStats(cell, sm.SchemeFB, a),
			sm.NewRLCStats(cell, sm.SchemeFB, a),
			sm.NewPDCPStats(cell, sm.SchemeFB, a),
		}
		for _, fn := range fns {
			if err := a.RegisterFunction(fn); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := a.Connect(addr); err != nil {
			log.Fatal(err)
		}
		cells = append(cells, cell)
		allFns = append(allFns, fns...)
		agents = append(agents, a)
	}

	// One disaggregated station: CU and DU run separate agents over the
	// same cell, each exposing only its own layers (§4.1.1).
	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT5G, NumRB: 106})
	if err != nil {
		log.Fatal(err)
	}
	cu, du := ran.Split(3, cell)
	cuAgent := agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{PLMN: plmn, Type: e2ap.NodeCU, NodeID: cu.BSID},
		Scheme: e2ap.SchemeFB,
	})
	cuFns := []agent.RANFunction{sm.NewPDCPStats(cell, sm.SchemeFB, cuAgent)}
	duAgent := agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{PLMN: plmn, Type: e2ap.NodeDU, NodeID: du.BSID},
		Scheme: e2ap.SchemeFB,
	})
	duFns := []agent.RANFunction{
		sm.NewMACStats(cell, sm.SchemeFB, duAgent),
		sm.NewRLCStats(cell, sm.SchemeFB, duAgent),
	}
	for _, fn := range cuFns {
		if err := cuAgent.RegisterFunction(fn); err != nil {
			log.Fatal(err)
		}
	}
	for _, fn := range duFns {
		if err := duAgent.RegisterFunction(fn); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := cuAgent.Connect(addr); err != nil {
		log.Fatal(err)
	}
	if _, err := duAgent.Connect(addr); err != nil {
		log.Fatal(err)
	}
	cells = append(cells, cell)
	allFns = append(allFns, cuFns...)
	allFns = append(allFns, duFns...)
	agents = append(agents, cuAgent, duAgent)
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()

	// Attach a saturated UE to every cell and run.
	for i, c := range cells {
		rnti := uint16(i + 1)
		if _, err := c.Attach(rnti, "", "208.95", 20+2*i); err != nil {
			log.Fatal(err)
		}
		if err := c.AddTraffic(rnti, &ran.Saturating{
			Flow:           ran.FiveTuple{DstIP: uint32(rnti), DstPort: 5001, Proto: ran.ProtoUDP},
			RateBytesPerMS: 1 << 20,
		}); err != nil {
			log.Fatal(err)
		}
	}
	for t := 0; t < 2000; t++ {
		for _, c := range cells {
			c.Step(1)
		}
		sm.TickAll(allFns, cells[0].Now())
	}
	time.Sleep(50 * time.Millisecond)

	fmt.Println("\nRAN database:")
	for _, e := range srv.RANDB().Entities() {
		fmt.Printf("  node %d: parts=%d complete=%v\n", e.NodeID, len(e.Parts), e.Complete)
	}
	fmt.Println("\nlatest MAC reports:")
	for _, info := range srv.Agents() {
		rep := mon.MAC(info.ID)
		if rep == nil {
			fmt.Printf("  agent %-14s -\n", info.NodeID)
			continue
		}
		fmt.Printf("  agent %-14s t=%dms", info.NodeID, rep.CellTimeMS)
		for _, ue := range rep.UEs {
			fmt.Printf("  UE%d %.1fMbps", ue.RNTI, ue.ThroughputBps/1e6)
		}
		fmt.Println()
	}
	inds, bytes := mon.Counters()
	fmt.Printf("\n%d indications, %d bytes total\n", inds, bytes)

	// The same run, as the telemetry layer saw it: transport frame
	// counts, codec latency histograms, per-subscription indication
	// rates (docs/OBSERVABILITY.md explains every row).
	fmt.Println("\n--- telemetry ---")
	telemetry.Dump(os.Stdout)
}
